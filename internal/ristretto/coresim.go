package ristretto

import (
	"fmt"

	"ristretto/internal/balance"
	"ristretto/internal/core"
	"ristretto/internal/energy"
	"ristretto/internal/refconv"
	"ristretto/internal/telemetry"
	"ristretto/internal/tensor"
)

// This file is the whole-core lockstep simulator: all M compute tiles of
// Figure 7 advance in a single global cycle loop, contending for the shared
// output buffer when they drain accumulate banks. Compared with
// SimulateConv (which sums per-intersection cycle counts per tile), the
// core simulator additionally models:
//
//   - the initial static-stream load of each round from the tile's local
//     weight buffer (ping-pong hides subsequent loads, not the first);
//   - the shared output buffer's write port: one tile drains per cycle,
//     others queue (aggregation of "results of different compute tiles",
//     Section IV-C4);
//   - true concurrency, so the reported latency is the cycle the last tile
//     retires — enabling cross-tile traces.
//
// Work and traffic accounting follows one convention shared with the tile
// simulator and the analytic model: stalls count every cycle the chain
// cannot advance on FIFO back-pressure; the input buffer is charged 1 B per
// activation atom as it is fed (so re-read every ping-pong round); the
// weight buffer is charged len(chunk) bytes at every chunk start; a drain
// charges a 4 B accumulate-buffer read plus a 4 B output-buffer write per
// drained entry. On those counters — and on Products/Deliveries/Conflicts —
// SimulateCore agrees exactly with the sum of SimulateIntersection results
// over the same jobs (pinned by the parity suite in simparity_test.go).

// CoreSimConfig extends the tile configuration with core-level parameters.
type CoreSimConfig struct {
	Tiles      int
	Tile       TileConfig
	TileW      int
	TileH      int
	Policy     balance.Policy
	LoadWidth  int // weight atoms loaded per cycle into the static registers (default 4)
	DrainWidth int // accumulate-bank entries drained per cycle through the output port (default 8)

	// Trace, when non-nil, receives a compact event stream of tile state
	// transitions (see TraceEvent).
	Trace Tracer
}

func (c CoreSimConfig) withDefaults() CoreSimConfig {
	if c.Tiles == 0 {
		c.Tiles = 4
	}
	c.Tile = c.Tile.withDefaults()
	if c.LoadWidth == 0 {
		c.LoadWidth = 4
	}
	if c.DrainWidth == 0 {
		c.DrainWidth = 8
	}
	return c
}

// CoreSimResult reports a lockstep core simulation.
type CoreSimResult struct {
	Output     *tensor.OutputMap
	Cycles     int64   // global cycles until the last tile retires
	TileBusy   []int64 // cycles each tile spent non-idle
	DrainWait  int64   // cycles tiles spent queued on the output port
	LoadCycles int64   // cycles spent loading static streams
	Stalls     int64   // crossbar/FIFO stalls inside tiles (same definition as TileResult.StallCycles)
	Products   int64   // atom multiplications performed
	Deliveries int64   // accumulator deliveries routed through the crossbar
	Conflicts  int64   // crossbar deliveries deferred by a same-bank write
	Stages     telemetry.StageCycles
	Counters   energy.Counters
}

// tileJob is one (input channel, spatial tile) intersection assigned to a
// compute tile.
type tileJob struct {
	acts    []core.ActAtom
	weights []core.WeightAtom
	tile    tensor.Tile
	full    *tensor.OutputMap
}

type coreTileState int

const (
	tileLoading coreTileState = iota
	tileStreaming
	tileDraining
	tileIdle
)

// coreTile is the per-tile state machine of the lockstep simulation. All
// per-cycle state (slots, FIFOs, accumulate banks, crossbar bitmask) lives
// in the tile's private TileScratch, so stepping allocates nothing.
type coreTile struct {
	cfg        TileConfig
	loadWidth  int
	drainWidth int
	jobs       []tileJob
	job        int
	state      coreTileState

	tc *traceCtx
	s  *TileScratch

	chunks   [][]core.WeightAtom
	chunk    int
	loadLeft int
	pos      int
	plane    int32 // fullW*fullH of the current job

	drainLeft    int   // cycles of output-port occupancy requested
	drainShift   uint8 // decoupled weight-slice shift of the pending drain
	drainEntries int   // accumulate-bank entries in the pending drain

	occ  *telemetry.Histogram // accumulate-bank occupancy at drain (nil = telemetry off)
	busy int64
}

func newCoreTile(cfg TileConfig, loadWidth, drainWidth int, jobs []tileJob, tc *traceCtx, occ *telemetry.Histogram, res *CoreSimResult) *coreTile {
	t := &coreTile{cfg: cfg, loadWidth: loadWidth, drainWidth: drainWidth, jobs: jobs, s: NewTileScratch(), tc: tc, occ: occ}
	t.nextJob(res)
	return t
}

func (t *coreTile) nextJob(res *CoreSimResult) {
	for t.job < len(t.jobs) {
		j := t.jobs[t.job]
		if len(j.acts) == 0 || len(j.weights) == 0 {
			t.job++
			continue
		}
		t.tc.emit("job_start", t.job, 0, fmt.Sprintf("acts=%d watoms=%d", len(j.acts), len(j.weights)))
		t.chunks = t.s.splitChunks(j.weights, t.cfg.Mults)
		t.s.prepareBanks(len(j.full.Data), j.full.K)
		t.plane = int32(j.full.W * j.full.H)
		t.chunk = 0
		t.startChunk(res)
		return
	}
	t.state = tileIdle
	t.tc.emit("tile_done", t.job, 0, "")
}

func (t *coreTile) startChunk(res *CoreSimResult) {
	chunk := t.chunks[t.chunk]
	t.s.prepareChunk(chunk, t.cfg.FIFODepth)
	t.pos = 0
	t.tc.emit("chunk_start", t.job, t.chunk, fmt.Sprintf("m=%d shift=%d", len(chunk), chunk[0].Shift))
	// Static-stream traffic: 1 B per atom every round, the same convention
	// as the tile simulator — the ping-pong registers hide load *latency*
	// beyond the first chunk, not the buffer reads.
	res.Counters.WeightBufBytes += int64(len(chunk))
	// The first chunk of a job loads its static stream explicitly; later
	// chunks are hidden by the ping-pong registers.
	if t.chunk == 0 {
		t.loadLeft = (len(chunk) + t.loadWidth - 1) / t.loadWidth
		t.state = tileLoading
	} else {
		t.state = tileStreaming
	}
}

// step advances the tile one cycle. It returns counters deltas via res.
func (t *coreTile) step(res *CoreSimResult, drainPortFree *bool) {
	if t.state == tileIdle {
		return
	}
	t.busy++
	j := t.jobs[t.job]
	switch t.state {
	case tileLoading:
		// The stream pipeline waits on the static-stream fill: all three
		// stages idle (the load is accounted separately in LoadCycles).
		res.Stages.Idle[telemetry.StageAtomizer]++
		res.Stages.Idle[telemetry.StageAtomputer]++
		res.Stages.Idle[telemetry.StageAtomulator]++
		t.loadLeft--
		res.LoadCycles++
		if t.loadLeft <= 0 {
			t.state = tileStreaming
		}
	case tileDraining:
		// The accumulate-buffer drain is Atomulator work; the upstream
		// stages have nothing to do until the next chunk starts.
		res.Stages.Idle[telemetry.StageAtomizer]++
		res.Stages.Idle[telemetry.StageAtomputer]++
		if !*drainPortFree {
			res.Stages.Stall[telemetry.StageAtomulator]++
			res.DrainWait++
			return
		}
		res.Stages.Busy[telemetry.StageAtomulator]++
		*drainPortFree = false
		t.drainLeft--
		if t.drainLeft <= 0 {
			t.tc.emit("drain_end", t.job, t.chunk, fmt.Sprintf("entries=%d shift=%d", t.drainEntries, t.drainShift))
			// Commit the bank contents with the decoupled shift; traffic is
			// charged per entry (4 B acc read + 4 B output write) inside
			// drainBanks, the shared convention.
			t.s.drainBanks(j.full.Data, t.drainShift, &res.Counters)
			t.advanceChunk(res)
		}
	case tileStreaming:
		t.streamCycle(res)
	}
}

// advanceChunk moves to the next chunk of the current job, or to the next
// job when the chunk list is exhausted.
func (t *coreTile) advanceChunk(res *CoreSimResult) {
	t.chunk++
	if t.chunk < len(t.chunks) {
		t.startChunk(res)
	} else {
		t.job++
		t.nextJob(res)
	}
}

func jobKW(j tileJob) int { return j.full.W - j.tile.W + 1 }
func jobKH(j tileJob) int { return j.full.H - j.tile.H + 1 }

// streamCycle is one pipeline cycle of the Atomputer/Atomulator, the same
// semantics as SimulateIntersection but resumable.
func (t *coreTile) streamCycle(res *CoreSimResult) {
	j := t.jobs[t.job]
	kh, kw := jobKH(j), jobKW(j)
	fullW, fullH := j.tile.W+kw-1, j.tile.H+kh-1
	s := t.s
	depth := t.cfg.FIFODepth

	// Crossbar: one delivery per bank per cycle.
	pending, wrote := s.crossbarCycle(depth, &res.Conflicts, &res.Counters)

	advance := s.canAdvance(depth)
	hadInput := t.pos < len(j.acts)
	fed, multed := false, false
	if advance {
		m := len(s.slots)
		for sl := m - 1; sl > 0; sl-- {
			s.slots[sl].reg = s.slots[sl-1].reg
			s.slots[sl].regValid = s.slots[sl-1].regValid
		}
		if t.pos < len(j.acts) {
			s.slots[0].reg = j.acts[t.pos]
			s.slots[0].regValid = true
			t.pos++
			fed = true
			res.Counters.AtomizerOps++
			res.Counters.InputBufBytes++
		} else {
			s.slots[0].regValid = false
		}
		for si := range s.slots {
			sl := &s.slots[si]
			if !sl.regValid {
				continue
			}
			multed = true
			res.Products++
			res.Counters.AtomMuls++
			a := sl.reg
			sl.acc += int32(sl.w.Mag) * (int32(a.Mag) << a.Shift)
			if a.Last {
				v := sl.acc
				if sl.w.Sign {
					v = -v
				}
				sl.acc = 0
				xo, yo := core.OutCoord(int(sl.w.X), int(sl.w.Y), int(a.X), int(a.Y), kh, kw)
				if xo >= 0 && xo < fullW && yo >= 0 && yo < fullH {
					tail := sl.head + sl.n
					if int(tail) >= depth {
						tail -= int32(depth)
					}
					s.fifo[si*depth+int(tail)] = delivery{
						k:   sl.w.K,
						idx: int32(sl.w.K)*t.plane + int32(core.OutAddr(xo, yo, j.tile.W, kw)),
						val: v,
					}
					sl.n++
					res.Deliveries++
				}
			}
		}
	} else {
		res.Stalls++
	}
	classifyStages(&res.Stages, fed, multed, advance, hadInput, pending, wrote)

	// Chunk complete when the stream has fully drained through the chain
	// and FIFOs are empty; then request the output port for the bank drain
	// if this is the last chunk of its slice.
	if t.pos >= len(j.acts) && s.chainEmpty() {
		shift := t.chunks[t.chunk][0].Shift
		lastOfSlice := t.chunk == len(t.chunks)-1 || t.chunks[t.chunk+1][0].Shift != shift
		if !lastOfSlice {
			t.advanceChunk(res)
			return
		}
		if t.occ != nil {
			t.occ.Observe(int64(len(s.touched)))
		}
		if len(s.touched) == 0 {
			// Nothing accumulated (fully ineffectual slice): skip the drain
			// state entirely — no output-port request, no phantom cycle, no
			// traffic.
			t.advanceChunk(res)
			return
		}
		t.tc.emit("drain_start", t.job, t.chunk, "")
		t.drainShift = shift
		t.drainEntries = len(s.touched)
		t.drainLeft = (t.drainEntries + t.drainWidth - 1) / t.drainWidth
		t.state = tileDraining
	}
}

// SimulateCore runs one layer through the lockstep core simulator and
// extracts the strided output. The numeric result is bit-exact against
// refconv.Conv.
func SimulateCore(f *tensor.FeatureMap, w *tensor.KernelStack, stride, pad int, cfg CoreSimConfig) CoreSimResult {
	cfg = cfg.withDefaults()
	tw, th := cfg.TileW, cfg.TileH
	if tw == 0 {
		tw = f.W
	}
	if th == 0 {
		th = f.H
	}
	tiles := tensor.TileGrid(f.W, f.H, tw, th)

	// Offline: streams and balancing.
	wstreams := make([][]core.WeightAtom, f.C)
	costs := make([]int64, f.C)
	watoms := make([]int, f.C)
	for c := 0; c < f.C; c++ {
		wstreams[c] = core.CompressWeights(core.FlattenKernels(w, c, nil), w.Bits, cfg.Tile.Gran, false)
		watoms[c] = len(wstreams[c])
	}
	actStreams := map[[2]int][]core.ActAtom{}
	tatoms := make([]int, f.C)
	for c := 0; c < f.C; c++ {
		for ti, tl := range tiles {
			acts := core.StreamTileActs(f, c, tl, cfg.Tile.Gran)
			actStreams[[2]int{c, ti}] = acts
			tatoms[c] += len(acts)
		}
		costs[c] = balance.Cost(tatoms[c], watoms[c], cfg.Tile.Mults)
	}
	groups := balance.Assign(cfg.Policy, costs, watoms, cfg.Tiles)

	// Per-tile job lists; every job owns its private full buffer so the
	// overlap-add stays race-free across tiles.
	var occHist *telemetry.Histogram
	if telemetry.Default.Enabled() {
		occHist = telemetry.Default.Histogram("ristretto.accbuf.occupancy_entries")
		var actAtoms, wAtoms int64
		for c := 0; c < f.C; c++ {
			actAtoms += int64(tatoms[c])
			wAtoms += int64(watoms[c])
		}
		telemetry.Default.Counter("ristretto.stream.act_atoms").Add(actAtoms)
		telemetry.Default.Counter("ristretto.stream.weight_atoms").Add(wAtoms)
	}
	res := CoreSimResult{TileBusy: make([]int64, cfg.Tiles)}
	cts := make([]*coreTile, cfg.Tiles)
	tcs := make([]*traceCtx, cfg.Tiles)
	for g := range tcs {
		tcs[g] = &traceCtx{tracer: cfg.Trace, cycle: &res.Cycles, tile: g}
	}
	fulls := []tileJob{}
	for g, chans := range groups {
		var jobs []tileJob
		for _, c := range chans {
			for ti, tl := range tiles {
				j := tileJob{
					acts:    actStreams[[2]int{c, ti}],
					weights: wstreams[c],
					tile:    tl,
					full:    tensor.NewOutputMap(w.K, tl.H+w.KH-1, tl.W+w.KW-1),
				}
				jobs = append(jobs, j)
				fulls = append(fulls, j)
			}
		}
		cts[g] = newCoreTile(cfg.Tile, cfg.LoadWidth, cfg.DrainWidth, jobs, tcs[g], occHist, &res)
	}

	// Global cycle loop.
	for {
		allIdle := true
		for _, ct := range cts {
			if ct.state != tileIdle {
				allIdle = false
				break
			}
		}
		if allIdle {
			break
		}
		res.Cycles++
		drainPortFree := true
		for g, ct := range cts {
			before := ct.busy
			ct.step(&res, &drainPortFree)
			res.TileBusy[g] += ct.busy - before
		}
	}

	global := tensor.NewOutputMap(w.K, tensor.FullConvSize(f.H, w.KH), tensor.FullConvSize(f.W, w.KW))
	for _, j := range fulls {
		refconv.AddTileFull(global, j.full, j.tile)
	}
	res.Output = refconv.ExtractStrided(global, f.H, f.W, w.KH, w.KW, stride, pad)
	telemetry.Default.AddStageCycles(res.Stages)
	return res
}
