// Package ristretto implements the Ristretto accelerator of Section IV: a
// cycle-level simulator of one compute tile (Atomizer → Atomputer →
// Atomulator → accumulate buffer) that is bit-exact against the dense
// reference convolution, plus the analytic multi-tile performance and energy
// model (Eq. 3–5) used for full-network evaluation and cross-validated
// against the cycle simulator.
package ristretto

import (
	"fmt"

	"ristretto/internal/atom"
	"ristretto/internal/core"
	"ristretto/internal/energy"
	"ristretto/internal/telemetry"
	"ristretto/internal/tensor"
)

// TileConfig parameterizes one compute tile.
type TileConfig struct {
	Mults     int              // N: atom multipliers / static-stream slots
	Gran      atom.Granularity // atom bit-width
	FIFODepth int              // Atomulator FIFO depth before the crossbar
	Banks     int              // accumulate-buffer banks (default: Mults)
}

func (c TileConfig) withDefaults() TileConfig {
	if c.Mults == 0 {
		c.Mults = 32
	}
	if c.Gran == 0 {
		c.Gran = 2
	}
	if c.FIFODepth == 0 {
		c.FIFODepth = 4
	}
	if c.Banks == 0 {
		c.Banks = c.Mults
	}
	return c
}

// TileResult reports one intersection run on the cycle simulator.
type TileResult struct {
	Cycles      int64 // pipeline cycles including stalls, with ping-pong round overlap
	StallCycles int64 // cycles lost to crossbar/FIFO back-pressure
	Products    int64 // atom multiplications performed
	Deliveries  int64 // accumulator deliveries routed through the crossbar
	Rounds      int   // static-stream chunks processed
	Conflicts   int64 // crossbar deliveries deferred by a same-bank write
	Stages      telemetry.StageCycles
	Counters    energy.Counters
}

// delivery is one accumulated product on its way to an accumulate bank.
type delivery struct {
	k    uint16 // output channel (selects the bank)
	addr int    // Eq. 2 address within the bank
	val  int32  // sign-applied, activation-shift-applied partial sum
}

// slot is one stage of the Atomputer chain plus its Atomulator address
// generator and pre-crossbar FIFO.
type slot struct {
	w    core.WeightAtom
	acc  int32
	reg  *core.ActAtom // activation atom currently at this stage
	fifo []delivery
}

// SimulateIntersection runs one (input channel, spatial tile) intersection on
// the cycle-level tile model: the weight atom stream is split into static
// chunks that never straddle a slice boundary (so every accumulate-bank drain
// has a single decoupled shift); for each chunk the activation stream flows
// through the systolic multiplier chain one atom per cycle; accumulator
// deliveries are routed through per-slot FIFOs and a crossbar that accepts
// one write per bank per cycle, stalling the pipeline on back-pressure.
//
// Numerical results accumulate into out (the K×fullH×fullW full-convolution
// buffer); cycle accounting credits the ping-pong weight registers: a
// non-final round costs t (+stalls) cycles because its drain overlaps the
// next round's fill (Eq. 3/4).
func SimulateIntersection(acts []core.ActAtom, weights []core.WeightAtom, kh, kw, tileW, tileH int, out *tensor.OutputMap, cfg TileConfig) TileResult {
	cfg = cfg.withDefaults()
	fullW, fullH := tileW+kw-1, tileH+kh-1
	if out.W != fullW || out.H != fullH {
		panic(fmt.Sprintf("ristretto: out buffer %dx%d, want %dx%d", out.W, out.H, fullW, fullH))
	}
	var res TileResult
	if len(acts) == 0 || len(weights) == 0 {
		return res
	}

	// Split the static stream into slice-aligned chunks of at most N atoms.
	var chunks [][]core.WeightAtom
	start := 0
	for start < len(weights) {
		end := start
		for end < len(weights) && end-start < cfg.Mults && weights[end].Shift == weights[start].Shift {
			end++
		}
		chunks = append(chunks, weights[start:end])
		start = end
	}

	// Accumulate banks, persistent within a slice: (channel, addr) → value.
	type bankKey struct {
		k    uint16
		addr int
	}
	bank := map[bankKey]int32{}
	var occHist *telemetry.Histogram
	if telemetry.Default.Enabled() {
		occHist = telemetry.Default.Histogram("ristretto.accbuf.occupancy_entries")
	}
	drain := func(shift uint8) {
		if occHist != nil {
			occHist.Observe(int64(len(bank)))
		}
		for key, v := range bank {
			yo := key.addr / fullW
			xo := key.addr % fullW
			out.Add(int(key.k), yo, xo, v<<shift)
			res.Counters.AccBufBytes += 4    // drain read
			res.Counters.OutputBufBytes += 4 // aggregation write
		}
		bank = map[bankKey]int32{}
	}

	for ci, chunk := range chunks {
		res.Rounds++
		m := len(chunk)
		slots := make([]slot, m)
		for j := range slots {
			slots[j].w = chunk[j]
		}
		res.Counters.WeightBufBytes += int64(m) // static-stream load (1B/atom incl. metadata)
		pos := 0
		entered := int64(0) // cycles until the last act atom entered the chain
		cycles := int64(0)
		for {
			// 1. Crossbar: each bank accepts one delivery per cycle.
			written := map[uint16]bool{}
			pending := false
			wrote := 0
			for j := range slots {
				if len(slots[j].fifo) == 0 {
					continue
				}
				pending = true
				d := slots[j].fifo[0]
				if written[d.k] {
					res.Conflicts++
					continue
				}
				written[d.k] = true
				slots[j].fifo = slots[j].fifo[1:]
				bank[bankKey{d.k, d.addr}] += d.val
				wrote++
				res.Counters.AccBufBytes += 4
			}

			// 2. Advance unless any FIFO is full (conservative stall).
			advance := true
			for j := range slots {
				if len(slots[j].fifo) >= cfg.FIFODepth {
					advance = false
					break
				}
			}
			done := pos >= len(acts)
			fed, multed := false, false
			if advance {
				// Systolic shift.
				for j := m - 1; j > 0; j-- {
					slots[j].reg = slots[j-1].reg
				}
				if pos < len(acts) {
					a := acts[pos]
					pos++
					fed = true
					slots[0].reg = &a
					res.Counters.AtomizerOps++
				} else {
					slots[0].reg = nil
				}
				// Multiply/accumulate at every occupied stage.
				for j := range slots {
					a := slots[j].reg
					if a == nil {
						continue
					}
					multed = true
					res.Products++
					res.Counters.AtomMuls++
					slots[j].acc += int32(slots[j].w.Mag) * (int32(a.Mag) << a.Shift)
					if a.Last {
						v := slots[j].acc
						if slots[j].w.Sign {
							v = -v
						}
						slots[j].acc = 0
						xo, yo := core.OutCoord(int(slots[j].w.X), int(slots[j].w.Y), int(a.X), int(a.Y), kh, kw)
						if xo >= 0 && xo < fullW && yo >= 0 && yo < fullH { // comp module
							slots[j].fifo = append(slots[j].fifo, delivery{k: slots[j].w.K, addr: core.OutAddr(xo, yo, tileW, kw), val: v})
							res.Deliveries++
						}
					}
				}
			} else if !done {
				res.StallCycles++
			}
			classifyStages(&res.Stages, fed, multed, advance, !done, pending, wrote)
			cycles++
			if pos >= len(acts) && entered == 0 {
				entered = cycles
			}
			// Finished when the stream is consumed, the chain has drained
			// and all FIFOs are empty.
			if pos >= len(acts) {
				empty := true
				for j := range slots {
					if slots[j].reg != nil || len(slots[j].fifo) != 0 {
						empty = false
						break
					}
				}
				if empty {
					break
				}
			}
		}
		// Ping-pong overlap: all but the final chunk hide their drain under
		// the next chunk's fill.
		last := ci == len(chunks)-1
		if last {
			res.Cycles += cycles
		} else {
			res.Cycles += entered
		}
		// Drain the accumulate banks at slice boundaries (decoupled shift).
		if last || chunks[ci+1][0].Shift != chunk[0].Shift {
			drain(chunk[0].Shift)
		}
		// The activation stream is re-read from the input buffer each round.
		res.Counters.InputBufBytes += int64(len(acts)) // ≈1B per atom incl. coords
	}
	telemetry.Default.AddStageCycles(res.Stages)
	return res
}

// classifyStages attributes one pipeline cycle to the busy/stall/idle bucket
// of each of the three stages (the accounting behind the -telemetry
// stage-utilization table):
//
//   - Atomizer: busy when it injected an atom, stalled when it had atoms to
//     feed but back-pressure blocked the advance, idle once the stream is
//     exhausted (chain drain).
//   - Atomputer: busy when any multiplier stage held an atom this cycle,
//     stalled when the chain could not advance, idle when it advanced empty.
//   - Atomulator: busy when the crossbar committed at least one delivery,
//     stalled when deliveries were pending but none could commit, idle when
//     no delivery was waiting.
//
// The classification is computed from values the simulators already
// maintain, so it costs a few branches per cycle whether or not telemetry
// is enabled — the flush to the registry is what Enabled gates.
func classifyStages(sc *telemetry.StageCycles, fed, multed, advance, hadInput, pending bool, wrote int) {
	switch {
	case fed:
		sc.Busy[telemetry.StageAtomizer]++
	case !advance && hadInput:
		sc.Stall[telemetry.StageAtomizer]++
	default:
		sc.Idle[telemetry.StageAtomizer]++
	}
	switch {
	case advance && multed:
		sc.Busy[telemetry.StageAtomputer]++
	case !advance:
		sc.Stall[telemetry.StageAtomputer]++
	default:
		sc.Idle[telemetry.StageAtomputer]++
	}
	switch {
	case wrote > 0:
		sc.Busy[telemetry.StageAtomulator]++
	case pending:
		sc.Stall[telemetry.StageAtomulator]++
	default:
		sc.Idle[telemetry.StageAtomulator]++
	}
}

// SliceAlignedSteps predicts the stall-free cycle count of
// SimulateIntersection: like core.Steps (Eq. 3/4) but with rounds that never
// straddle weight-slice boundaries.
func SliceAlignedSteps(t int, weights []core.WeightAtom, n int) int64 {
	if t == 0 || len(weights) == 0 {
		return 0
	}
	rounds := 0
	lastChunk := 0
	start := 0
	for start < len(weights) {
		end := start
		for end < len(weights) && end-start < n && weights[end].Shift == weights[start].Shift {
			end++
		}
		rounds++
		lastChunk = end - start
		start = end
	}
	return int64(t)*int64(rounds) + int64(lastChunk) - 1
}
