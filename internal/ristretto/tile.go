// Package ristretto implements the Ristretto accelerator of Section IV: a
// cycle-level simulator of one compute tile (Atomizer → Atomputer →
// Atomulator → accumulate buffer) that is bit-exact against the dense
// reference convolution, plus the analytic multi-tile performance and energy
// model (Eq. 3–5) used for full-network evaluation and cross-validated
// against the cycle simulator.
package ristretto

import (
	"fmt"

	"ristretto/internal/atom"
	"ristretto/internal/core"
	"ristretto/internal/energy"
	"ristretto/internal/telemetry"
	"ristretto/internal/tensor"
)

// TileConfig parameterizes one compute tile.
type TileConfig struct {
	Mults     int              // N: atom multipliers / static-stream slots
	Gran      atom.Granularity // atom bit-width
	FIFODepth int              // Atomulator FIFO depth before the crossbar
	Banks     int              // accumulate-buffer banks (default: Mults)
}

func (c TileConfig) withDefaults() TileConfig {
	if c.Mults == 0 {
		c.Mults = 32
	}
	if c.Gran == 0 {
		c.Gran = 2
	}
	if c.FIFODepth == 0 {
		c.FIFODepth = 4
	}
	if c.Banks == 0 {
		c.Banks = c.Mults
	}
	return c
}

// TileResult reports one intersection run on the cycle simulator.
type TileResult struct {
	Cycles      int64 // pipeline cycles including stalls, with ping-pong round overlap
	StallCycles int64 // every cycle the chain could not advance on FIFO back-pressure (fill and drain phases alike — the unified definition shared with the core sim)
	Products    int64 // atom multiplications performed
	Deliveries  int64 // accumulator deliveries routed through the crossbar
	Rounds      int   // static-stream chunks processed
	Conflicts   int64 // crossbar deliveries deferred by a same-bank write
	Stages      telemetry.StageCycles
	Counters    energy.Counters
}

// delivery is one accumulated product on its way to an accumulate bank.
type delivery struct {
	k   uint16 // output channel (selects the bank)
	idx int32  // dense accumulate-buffer index: k*fullH*fullW + Eq. 2 address
	val int32  // sign-applied, activation-shift-applied partial sum
}

// slot is one stage of the Atomputer chain plus its Atomulator address
// generator and pre-crossbar FIFO cursor. The FIFO storage itself lives in
// TileScratch.fifo (a fixed-capacity ring window per slot); the activation
// register is held by value so nothing in the per-cycle loop escapes to the
// heap.
type slot struct {
	w        core.WeightAtom
	acc      int32
	reg      core.ActAtom // activation atom currently at this stage
	regValid bool
	head     int32 // ring cursor into this slot's FIFO window
	n        int32 // FIFO occupancy
}

// TileScratch owns the reusable simulation state of one compute tile, so a
// caller sweeping many intersections (SimulateConv, the benchmark suite, the
// daemon) pays the buffer allocations once instead of per intersection — and
// nothing at all per simulated cycle. All fields are sized lazily against
// the largest intersection seen. The zero value is ready to use.
//
// Invariant between runs: bank is all-zero and present/touched empty (every
// run drains fully), so re-use needs no explicit clearing.
type TileScratch struct {
	chunks   [][]core.WeightAtom // slice-aligned static-stream chunks
	slots    []slot
	fifo     []delivery // m×FIFODepth ring storage, window j = [j*depth, (j+1)*depth)
	bank     []int32    // dense accumulate banks, image of the out buffer
	present  []uint64   // bitset over bank: entry holds a partial sum
	touched  []int32    // bank indices in first-write order (deterministic drain order)
	written  []uint64   // per-cycle crossbar bank bitmask, indexed by output channel
	writtenK []uint16   // channels written this cycle, for sparse clearing
}

// NewTileScratch returns an empty scratch; buffers grow on first use.
func NewTileScratch() *TileScratch { return &TileScratch{} }

// prepareBanks sizes the accumulate-bank image and crossbar bitmask for an
// out buffer of bankLen accumulators across k output channels.
func (s *TileScratch) prepareBanks(bankLen, k int) {
	if cap(s.bank) < bankLen {
		s.bank = make([]int32, bankLen)
		s.present = make([]uint64, (bankLen+63)/64)
	}
	s.bank = s.bank[:bankLen]
	s.present = s.present[:(bankLen+63)/64]
	if words := (k + 63) / 64; cap(s.written) < words {
		s.written = make([]uint64, words)
	} else {
		s.written = s.written[:words]
	}
	s.touched = s.touched[:0]
	s.writtenK = s.writtenK[:0]
}

// prepareChunk loads a static-stream chunk into the slot array and sizes the
// FIFO ring storage for it.
func (s *TileScratch) prepareChunk(chunk []core.WeightAtom, depth int) {
	m := len(chunk)
	if cap(s.slots) < m {
		s.slots = make([]slot, m)
	}
	s.slots = s.slots[:m]
	if need := m * depth; cap(s.fifo) < need {
		s.fifo = make([]delivery, need)
	} else {
		s.fifo = s.fifo[:need]
	}
	for j := range s.slots {
		s.slots[j] = slot{w: chunk[j]}
	}
}

// splitChunks splits the static stream into slice-aligned chunks of at most
// n atoms, reusing the scratch chunk list.
func (s *TileScratch) splitChunks(weights []core.WeightAtom, n int) [][]core.WeightAtom {
	s.chunks = s.chunks[:0]
	start := 0
	for start < len(weights) {
		end := start
		for end < len(weights) && end-start < n && weights[end].Shift == weights[start].Shift {
			end++
		}
		s.chunks = append(s.chunks, weights[start:end])
		start = end
	}
	return s.chunks
}

// crossbarCycle commits at most one pending delivery per accumulate bank:
// the shared inner step of both simulators. It returns whether any delivery
// was pending and how many committed; conflicts and traffic land in the
// provided counters.
func (s *TileScratch) crossbarCycle(depth int, conflicts *int64, acc *energy.Counters) (pending bool, wrote int) {
	for j := range s.slots {
		sl := &s.slots[j]
		if sl.n == 0 {
			continue
		}
		pending = true
		d := &s.fifo[j*depth+int(sl.head)]
		kw, kb := d.k>>6, uint(d.k&63)
		if s.written[kw]&(1<<kb) != 0 {
			*conflicts++
			continue
		}
		s.written[kw] |= 1 << kb
		s.writtenK = append(s.writtenK, d.k)
		sl.head++
		if int(sl.head) == depth {
			sl.head = 0
		}
		sl.n--
		idx := d.idx
		if s.present[idx>>6]&(1<<uint(idx&63)) == 0 {
			s.present[idx>>6] |= 1 << uint(idx&63)
			s.touched = append(s.touched, idx)
		}
		s.bank[idx] += d.val
		wrote++
		acc.AccBufBytes += 4
	}
	for _, k := range s.writtenK {
		s.written[k>>6] &^= 1 << uint(k&63)
	}
	s.writtenK = s.writtenK[:0]
	return pending, wrote
}

// canAdvance reports whether every slot FIFO has room for one more delivery
// (the conservative stall condition).
func (s *TileScratch) canAdvance(depth int) bool {
	for j := range s.slots {
		if int(s.slots[j].n) >= depth {
			return false
		}
	}
	return true
}

// chainEmpty reports whether the multiplier chain and all FIFOs drained.
func (s *TileScratch) chainEmpty() bool {
	for j := range s.slots {
		if s.slots[j].regValid || s.slots[j].n != 0 {
			return false
		}
	}
	return true
}

// drainBanks applies the decoupled weight-slice shift and aggregates every
// touched accumulate bank into dst, clearing the banks. The drain walks the
// touched list in first-write order — deterministic because the simulation
// is. It returns the number of entries drained; traffic accounting (4 B
// accumulate-buffer read + 4 B output-buffer write per entry, the unified
// convention of both simulators) lands in acc.
func (s *TileScratch) drainBanks(dst []int32, shift uint8, acc *energy.Counters) int {
	for _, idx := range s.touched {
		dst[idx] += s.bank[idx] << shift
		s.bank[idx] = 0
		s.present[idx>>6] &^= 1 << uint(idx&63)
	}
	n := len(s.touched)
	s.touched = s.touched[:0]
	acc.AccBufBytes += 4 * int64(n)
	acc.OutputBufBytes += 4 * int64(n)
	return n
}

// SimulateIntersection runs one (input channel, spatial tile) intersection on
// the cycle-level tile model: the weight atom stream is split into static
// chunks that never straddle a slice boundary (so every accumulate-bank drain
// has a single decoupled shift); for each chunk the activation stream flows
// through the systolic multiplier chain one atom per cycle; accumulator
// deliveries are routed through per-slot FIFOs and a crossbar that accepts
// one write per bank per cycle, stalling the pipeline on back-pressure.
//
// Numerical results accumulate into out (the K×fullH×fullW full-convolution
// buffer); cycle accounting credits the ping-pong weight registers: a
// non-final round costs t (+stalls) cycles because its drain overlaps the
// next round's fill (Eq. 3/4).
//
// This wrapper allocates a fresh TileScratch; sweeps should use
// SimulateIntersectionScratch with a reused one.
func SimulateIntersection(acts []core.ActAtom, weights []core.WeightAtom, kh, kw, tileW, tileH int, out *tensor.OutputMap, cfg TileConfig) TileResult {
	return SimulateIntersectionScratch(acts, weights, kh, kw, tileW, tileH, out, cfg, NewTileScratch())
}

// SimulateIntersectionScratch is SimulateIntersection with caller-owned
// scratch: across a sweep the hot loop performs no heap allocation at all.
func SimulateIntersectionScratch(acts []core.ActAtom, weights []core.WeightAtom, kh, kw, tileW, tileH int, out *tensor.OutputMap, cfg TileConfig, s *TileScratch) TileResult {
	cfg = cfg.withDefaults()
	fullW, fullH := tileW+kw-1, tileH+kh-1
	if out.W != fullW || out.H != fullH {
		panic(fmt.Sprintf("ristretto: out buffer %dx%d, want %dx%d", out.W, out.H, fullW, fullH))
	}
	var res TileResult
	if len(acts) == 0 || len(weights) == 0 {
		return res
	}

	chunks := s.splitChunks(weights, cfg.Mults)
	s.prepareBanks(len(out.Data), out.K)
	plane := int32(fullW * fullH)
	depth := cfg.FIFODepth
	var occHist *telemetry.Histogram
	if telemetry.Default.Enabled() {
		occHist = telemetry.Default.Histogram("ristretto.accbuf.occupancy_entries")
	}

	for ci, chunk := range chunks {
		res.Rounds++
		m := len(chunk)
		s.prepareChunk(chunk, depth)
		// Static-stream load: 1 B per atom (incl. metadata) every round —
		// the ping-pong registers hide the load latency, not the traffic.
		res.Counters.WeightBufBytes += int64(m)
		pos := 0
		entered := int64(0) // cycles until the last act atom entered the chain
		cycles := int64(0)
		for {
			// 1. Crossbar: each bank accepts one delivery per cycle.
			pending, wrote := s.crossbarCycle(depth, &res.Conflicts, &res.Counters)

			// 2. Advance unless any FIFO is full (conservative stall).
			advance := s.canAdvance(depth)
			done := pos >= len(acts)
			fed, multed := false, false
			if advance {
				// Systolic shift.
				for j := m - 1; j > 0; j-- {
					s.slots[j].reg = s.slots[j-1].reg
					s.slots[j].regValid = s.slots[j-1].regValid
				}
				if pos < len(acts) {
					s.slots[0].reg = acts[pos]
					s.slots[0].regValid = true
					pos++
					fed = true
					res.Counters.AtomizerOps++
					// The activation stream is re-read from the input
					// buffer each ping-pong round: ≈1 B per atom incl.
					// coords, charged as fed.
					res.Counters.InputBufBytes++
				} else {
					s.slots[0].regValid = false
				}
				// Multiply/accumulate at every occupied stage.
				for j := range s.slots {
					sl := &s.slots[j]
					if !sl.regValid {
						continue
					}
					multed = true
					res.Products++
					res.Counters.AtomMuls++
					a := sl.reg
					sl.acc += int32(sl.w.Mag) * (int32(a.Mag) << a.Shift)
					if a.Last {
						v := sl.acc
						if sl.w.Sign {
							v = -v
						}
						sl.acc = 0
						xo, yo := core.OutCoord(int(sl.w.X), int(sl.w.Y), int(a.X), int(a.Y), kh, kw)
						if xo >= 0 && xo < fullW && yo >= 0 && yo < fullH { // comp module
							tail := sl.head + sl.n
							if int(tail) >= depth {
								tail -= int32(depth)
							}
							s.fifo[j*depth+int(tail)] = delivery{
								k:   sl.w.K,
								idx: int32(sl.w.K)*plane + int32(core.OutAddr(xo, yo, tileW, kw)),
								val: v,
							}
							sl.n++
							res.Deliveries++
						}
					}
				}
			} else {
				// Unified stall definition: every cycle lost to FIFO
				// back-pressure counts, whether the stream is still feeding
				// or the chain is draining (the core sim counts these too).
				res.StallCycles++
			}
			classifyStages(&res.Stages, fed, multed, advance, !done, pending, wrote)
			cycles++
			if pos >= len(acts) && entered == 0 {
				entered = cycles
			}
			// Finished when the stream is consumed, the chain has drained
			// and all FIFOs are empty.
			if pos >= len(acts) && s.chainEmpty() {
				break
			}
		}
		// Ping-pong overlap: all but the final chunk hide their drain under
		// the next chunk's fill.
		last := ci == len(chunks)-1
		if last {
			res.Cycles += cycles
		} else {
			res.Cycles += entered
		}
		// Drain the accumulate banks at slice boundaries (decoupled shift).
		if last || chunks[ci+1][0].Shift != chunk[0].Shift {
			if occHist != nil {
				occHist.Observe(int64(len(s.touched)))
			}
			s.drainBanks(out.Data, chunk[0].Shift, &res.Counters)
		}
	}
	telemetry.Default.AddStageCycles(res.Stages)
	return res
}

// classifyStages attributes one pipeline cycle to the busy/stall/idle bucket
// of each of the three stages (the accounting behind the -telemetry
// stage-utilization table):
//
//   - Atomizer: busy when it injected an atom, stalled when it had atoms to
//     feed but back-pressure blocked the advance, idle once the stream is
//     exhausted (chain drain).
//   - Atomputer: busy when any multiplier stage held an atom this cycle,
//     stalled when the chain could not advance, idle when it advanced empty.
//   - Atomulator: busy when the crossbar committed at least one delivery,
//     stalled when deliveries were pending but none could commit, idle when
//     no delivery was waiting.
//
// The classification is computed from values the simulators already
// maintain, so it costs a few branches per cycle whether or not telemetry
// is enabled — the flush to the registry is what Enabled gates.
func classifyStages(sc *telemetry.StageCycles, fed, multed, advance, hadInput, pending bool, wrote int) {
	switch {
	case fed:
		sc.Busy[telemetry.StageAtomizer]++
	case !advance && hadInput:
		sc.Stall[telemetry.StageAtomizer]++
	default:
		sc.Idle[telemetry.StageAtomizer]++
	}
	switch {
	case advance && multed:
		sc.Busy[telemetry.StageAtomputer]++
	case !advance:
		sc.Stall[telemetry.StageAtomputer]++
	default:
		sc.Idle[telemetry.StageAtomputer]++
	}
	switch {
	case wrote > 0:
		sc.Busy[telemetry.StageAtomulator]++
	case pending:
		sc.Stall[telemetry.StageAtomulator]++
	default:
		sc.Idle[telemetry.StageAtomulator]++
	}
}

// SliceAlignedSteps predicts the stall-free cycle count of
// SimulateIntersection: like core.Steps (Eq. 3/4) but with rounds that never
// straddle weight-slice boundaries.
func SliceAlignedSteps(t int, weights []core.WeightAtom, n int) int64 {
	if t == 0 || len(weights) == 0 {
		return 0
	}
	rounds := 0
	lastChunk := 0
	start := 0
	for start < len(weights) {
		end := start
		for end < len(weights) && end-start < n && weights[end].Shift == weights[start].Shift {
			end++
		}
		rounds++
		lastChunk = end - start
		start = end
	}
	return int64(t)*int64(rounds) + int64(lastChunk) - 1
}
