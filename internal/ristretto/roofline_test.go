package ristretto

import (
	"testing"

	"ristretto/internal/model"
	"ristretto/internal/workload"
)

func rooflineStats(t *testing.T) workload.LayerStats {
	t.Helper()
	g := workload.NewGen(21)
	l := model.Layer{Name: "t", C: 16, H: 14, W: 14, K: 16, KH: 3, KW: 3, Stride: 1, Pad: 1}
	return g.LayerStats(l, 2, 2, 2, workload.EvalTargets("VGG-16", 2, 2), true)
}

func TestRooflineUnboundedByDefault(t *testing.T) {
	st := rooflineStats(t)
	p := EstimateLayer(st, DefaultConfig())
	if p.MemoryBound {
		t.Fatal("default config must not apply a bandwidth bound")
	}
}

func TestRooflineCapsThinCompute(t *testing.T) {
	st := rooflineStats(t)
	cfg := DefaultConfig()
	free := EstimateLayer(st, cfg)
	cfg.DRAMBytesPerCycle = 0.05 // starved: 1 byte per 20 cycles
	bound := EstimateLayer(st, cfg)
	if !bound.MemoryBound {
		t.Fatal("starved bandwidth must bind the layer")
	}
	if bound.Cycles <= free.Cycles {
		t.Fatalf("memory-bound cycles %d must exceed compute-bound %d", bound.Cycles, free.Cycles)
	}
	if bound.Utilization >= free.Utilization {
		t.Fatal("utilization must fall when memory-bound")
	}
}

func TestRooflineGenerousBandwidthNoEffect(t *testing.T) {
	st := rooflineStats(t)
	cfg := DefaultConfig()
	free := EstimateLayer(st, cfg)
	cfg.DRAMBytesPerCycle = 1 << 20
	rich := EstimateLayer(st, cfg)
	if rich.Cycles != free.Cycles || rich.MemoryBound {
		t.Fatal("generous bandwidth must leave compute-bound latency unchanged")
	}
}

func TestWeightPassAmplificationInPerf(t *testing.T) {
	// A layer whose weights exceed the configured weight buffer must incur
	// more DRAM traffic than with an ample buffer.
	g := workload.NewGen(22)
	l := model.Layer{Name: "big", C: 64, H: 14, W: 14, K: 128, KH: 3, KW: 3, Stride: 1, Pad: 1}
	st := g.LayerStats(l, 8, 8, 2, workload.Targets{WDensity: 0.6, ADensity: 0.5}, true)
	small := DefaultConfig()
	small.WeightBufCap = 4 << 10
	big := DefaultConfig()
	big.WeightBufCap = 64 << 20
	ps := EstimateLayer(st, small)
	pb := EstimateLayer(st, big)
	if ps.Counters.DRAMBytes <= pb.Counters.DRAMBytes {
		t.Fatalf("tiny weight buffer (%d B DRAM) must cost more than ample (%d B)",
			ps.Counters.DRAMBytes, pb.Counters.DRAMBytes)
	}
	if ps.Cycles != pb.Cycles {
		t.Fatal("without a bandwidth bound, buffer capacity must not change cycles")
	}
}
