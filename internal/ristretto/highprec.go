package ristretto

import (
	"ristretto/internal/core"
	"ristretto/internal/tensor"
)

// Section IV-D: Ristretto supports 16/32-bit inference two ways.
//
// Spatial extension simply widens the shift range: because atomization is
// generic over operand bit-width, the same CSC pipeline handles 16-bit
// operands directly (shifters cover {0,2,...,14}); core.Convolve works
// unchanged with 16-bit tensors.
//
// Temporal decomposition is the more economical path: a high-precision model
// splits into low-precision sub-models computed in sequence on unmodified
// 8-bit hardware, with results shift-added. A 16-bit convolution becomes
// four 8-bit convolutions:
//
//	a = aH·2⁸ + aL,  w = wH·2⁸ + wL  ⇒  a·w = (aH·wH)·2¹⁶ + (aH·wL + aL·wH)·2⁸ + aL·wL
//
// where aH/aL are unsigned bytes, wH is the arithmetic high byte (signed) and
// wL the unsigned low byte.

// SubModel is one low-precision slice of a temporally decomposed model.
type SubModel struct {
	F     *tensor.FeatureMap
	W     *tensor.KernelStack
	Shift uint // result is shifted left by this before aggregation
}

// TemporalDecompose splits a 16-bit layer into four 8-bit sub-models.
// Activations must be unsigned 16-bit; weights signed 16-bit.
func TemporalDecompose(f *tensor.FeatureMap, w *tensor.KernelStack) []SubModel {
	if f.Bits != 16 || w.Bits != 16 {
		panic("ristretto: temporal decomposition expects 16-bit operands")
	}
	aH := tensor.NewFeatureMap(f.C, f.H, f.W, 8)
	aL := tensor.NewFeatureMap(f.C, f.H, f.W, 8)
	for i, v := range f.Data {
		aH.Data[i] = v >> 8
		aL.Data[i] = v & 255
	}
	// wH is signed (arithmetic shift keeps the sign, range [-128,127]); wL
	// is the raw low byte, unsigned in [0,255]. Both are stored at 9 bits:
	// the sign-magnitude pipeline needs |v| < 1<<(bits-1), and both -128
	// and 255 have 8-bit magnitudes.
	wH := tensor.NewKernelStack(w.K, w.C, w.KH, w.KW, 9)
	wL := tensor.NewKernelStack(w.K, w.C, w.KH, w.KW, 9)
	for i, v := range w.Data {
		wH.Data[i] = v >> 8
		wL.Data[i] = v & 255
	}
	return []SubModel{
		{F: aH, W: wH, Shift: 16},
		{F: aH, W: wL, Shift: 8},
		{F: aL, W: wH, Shift: 8},
		{F: aL, W: wL, Shift: 0},
	}
}

// ConvolveDecomposed runs each sub-model through CSC in sequence and
// shift-adds the partial outputs — the temporal-decomposition inference
// path. Returns the aggregated output and the summed CSC statistics.
func ConvolveDecomposed(subs []SubModel, stride, pad int, cfg core.Config) (*tensor.OutputMap, core.Stats) {
	var out *tensor.OutputMap
	var total core.Stats
	for _, s := range subs {
		o, st := core.Convolve(s.F, s.W, stride, pad, cfg)
		total.Steps += st.Steps
		total.Products += st.Products
		total.ActAtoms += st.ActAtoms
		total.WeightAtoms += st.WeightAtoms
		total.Rounds += st.Rounds
		total.SliceDrains += st.SliceDrains
		if out == nil {
			out = tensor.NewOutputMap(o.K, o.H, o.W)
		}
		for i, v := range o.Data {
			out.Data[i] += v << s.Shift
		}
	}
	return out, total
}
