package modelio

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ristretto/internal/tensor"
	"ristretto/internal/workload"
)

func TestFeatureMapRoundTrip(t *testing.T) {
	g := workload.NewGen(1)
	f := g.FeatureMapExact(5, 9, 7, 8, 2, 0.4, 0.7)
	var buf bytes.Buffer
	if err := WriteFeatureMap(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFeatureMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.C != f.C || got.H != f.H || got.W != f.W || got.Bits != f.Bits {
		t.Fatalf("shape lost: %v vs %v", got, f)
	}
	for i := range f.Data {
		if got.Data[i] != f.Data[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestKernelStackRoundTrip(t *testing.T) {
	g := workload.NewGen(2)
	k := g.KernelsExact(4, 3, 3, 3, 4, 2, 0.5, 0.8)
	var buf bytes.Buffer
	if err := WriteKernelStack(&buf, k); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernelStack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != k.K || got.C != k.C || got.KH != k.KH || got.KW != k.KW || got.Bits != k.Bits {
		t.Fatal("shape lost")
	}
	for i := range k.Data {
		if got.Data[i] != k.Data[i] {
			t.Fatalf("data mismatch at %d (negative values must survive)", i)
		}
	}
}

func TestOutputMapRoundTrip(t *testing.T) {
	o := tensor.NewOutputMap(2, 3, 3)
	o.Set(0, 0, 0, -123456)
	o.Set(1, 2, 2, 1<<30)
	var buf bytes.Buffer
	if err := WriteOutputMap(&buf, o); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOutputMap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(o) {
		t.Fatal("output map round trip failed")
	}
}

func TestCorruptionDetected(t *testing.T) {
	g := workload.NewGen(3)
	f := g.FeatureMapExact(2, 4, 4, 8, 2, 0.5, 0.7)
	var buf bytes.Buffer
	if err := WriteFeatureMap(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0x40
	if _, err := ReadFeatureMap(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	g := workload.NewGen(4)
	f := g.FeatureMapExact(2, 4, 4, 8, 2, 0.5, 0.7)
	var buf bytes.Buffer
	if err := WriteFeatureMap(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadKernelStack(&buf); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := ReadFeatureMap(bytes.NewReader([]byte("nope, not a tensor at all........"))); err == nil {
		t.Fatal("bad stream accepted")
	}
}

func TestTruncationRejected(t *testing.T) {
	g := workload.NewGen(5)
	f := g.FeatureMapExact(2, 4, 4, 8, 2, 0.5, 0.7)
	var buf bytes.Buffer
	if err := WriteFeatureMap(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-9]
	if _, err := ReadFeatureMap(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestFileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	g := workload.NewGen(6)
	f := g.FeatureMapExact(3, 6, 6, 4, 2, 0.4, 0.8)
	k := g.KernelsExact(2, 3, 3, 3, 8, 2, 0.5, 0.8)
	fp := filepath.Join(dir, "acts.rstt")
	kp := filepath.Join(dir, "weights.rstt")
	if err := SaveFeatureMap(fp, f); err != nil {
		t.Fatal(err)
	}
	if err := SaveKernelStack(kp, k); err != nil {
		t.Fatal(err)
	}
	f2, err := LoadFeatureMap(fp)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := LoadKernelStack(kp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != f2.Data[i] {
			t.Fatal("feature map file round trip failed")
		}
	}
	for i := range k.Data {
		if k.Data[i] != k2.Data[i] {
			t.Fatal("kernel file round trip failed")
		}
	}
	// Sparse tensors should compress well below 4 B/element.
	st, err := os.Stat(fp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(4*len(f.Data)) {
		t.Fatalf("varint encoding ineffective: %d bytes for %d elements", st.Size(), len(f.Data))
	}
}

func TestSaveErrorPaths(t *testing.T) {
	// A path whose parent is a regular file is unwritable for any user
	// (unlike a missing absolute directory, which root could create).
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(blocker, "x.rstt")
	g := workload.NewGen(7)
	f := g.FeatureMapExact(1, 2, 2, 8, 2, 0.5, 0.7)
	if err := SaveFeatureMap(bad, f); err == nil {
		t.Fatal("expected error for unwritable path")
	}
	if _, err := LoadFeatureMap(bad); err == nil {
		t.Fatal("expected error for missing file")
	}
	k := g.KernelsExact(1, 1, 1, 1, 8, 2, 1, 1)
	if err := SaveKernelStack(bad, k); err == nil {
		t.Fatal("expected error for unwritable kernel path")
	}
	if _, err := LoadKernelStack(bad); err == nil {
		t.Fatal("expected error for missing kernel file")
	}
}

func TestVersionRejected(t *testing.T) {
	g := workload.NewGen(8)
	f := g.FeatureMapExact(1, 2, 2, 8, 2, 0.5, 0.7)
	var buf bytes.Buffer
	if err := WriteFeatureMap(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // bump version
	// Re-stamp the checksum so only the version check can fail.
	body := raw[:len(raw)-4]
	sum := crc32.ChecksumIEEE(body)
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], sum)
	if _, err := ReadFeatureMap(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version not checked: %v", err)
	}
}
