// Package modelio serializes the repository's tensors to a compact binary
// format, so synthesized workloads (the stand-ins for quantized model
// checkpoints) can be saved, exchanged and re-loaded bit-identically —
// the reproduction's equivalent of shipping a model zoo.
//
// Format (little-endian):
//
//	magic "RSTT" | version u8 | kind u8 | bits u8 | pad u8
//	dims  u32 × 4 (unused dims are 1)
//	payload: zig-zag varint per element (sparse tensors compress well)
//	crc32 (IEEE) of everything above
package modelio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ristretto/internal/safeio"
	"ristretto/internal/tensor"
)

const (
	magic   = "RSTT"
	version = 1

	kindFeatureMap  = 1
	kindKernelStack = 2
	kindOutputMap   = 3
)

type header struct {
	Kind, Bits uint8
	Dims       [4]uint32
}

func writeAll(w io.Writer, kind, bits uint8, dims [4]uint32, data []int32) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write([]byte(magic)); err != nil {
		return err
	}
	hdr := []byte{version, kind, bits, 0}
	if _, err := mw.Write(hdr); err != nil {
		return err
	}
	for _, d := range dims {
		if err := binary.Write(mw, binary.LittleEndian, d); err != nil {
			return err
		}
	}
	var buf [binary.MaxVarintLen64]byte
	for _, v := range data {
		n := binary.PutVarint(buf[:], int64(v))
		if _, err := mw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

func readAll(r io.Reader, wantKind uint8) (header, []int32, error) {
	var h header
	raw, err := io.ReadAll(r)
	if err != nil {
		return h, nil, err
	}
	if len(raw) < 4+4+16+4 {
		return h, nil, fmt.Errorf("modelio: truncated stream (%d bytes)", len(raw))
	}
	body := raw[:len(raw)-4]
	sum := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return h, nil, fmt.Errorf("modelio: checksum mismatch (%08x vs stored %08x)", got, sum)
	}
	if string(body[:4]) != magic {
		return h, nil, fmt.Errorf("modelio: bad magic %q", body[:4])
	}
	if body[4] != version {
		return h, nil, fmt.Errorf("modelio: unsupported version %d", body[4])
	}
	h.Kind, h.Bits = body[5], body[6]
	if h.Kind != wantKind {
		return h, nil, fmt.Errorf("modelio: kind %d, want %d", h.Kind, wantKind)
	}
	n := 1
	off := 8
	for i := range h.Dims {
		h.Dims[i] = binary.LittleEndian.Uint32(body[off:])
		off += 4
		if h.Dims[i] == 0 || h.Dims[i] > 1<<20 {
			return h, nil, fmt.Errorf("modelio: implausible dimension %d", h.Dims[i])
		}
		n *= int(h.Dims[i])
	}
	if n > 1<<28 {
		return h, nil, fmt.Errorf("modelio: tensor too large (%d elements)", n)
	}
	data := make([]int32, n)
	payload := body[off:]
	for i := range data {
		v, sz := binary.Varint(payload)
		if sz <= 0 {
			return h, nil, fmt.Errorf("modelio: payload truncated at element %d", i)
		}
		data[i] = int32(v)
		payload = payload[sz:]
	}
	if len(payload) != 0 {
		return h, nil, fmt.Errorf("modelio: %d trailing payload bytes", len(payload))
	}
	return h, data, nil
}

// WriteFeatureMap serializes f.
func WriteFeatureMap(w io.Writer, f *tensor.FeatureMap) error {
	return writeAll(w, kindFeatureMap, uint8(f.Bits), [4]uint32{uint32(f.C), uint32(f.H), uint32(f.W), 1}, f.Data)
}

// ReadFeatureMap deserializes a feature map.
func ReadFeatureMap(r io.Reader) (*tensor.FeatureMap, error) {
	h, data, err := readAll(r, kindFeatureMap)
	if err != nil {
		return nil, err
	}
	f := tensor.NewFeatureMap(int(h.Dims[0]), int(h.Dims[1]), int(h.Dims[2]), int(h.Bits))
	copy(f.Data, data)
	return f, nil
}

// WriteKernelStack serializes k.
func WriteKernelStack(w io.Writer, k *tensor.KernelStack) error {
	return writeAll(w, kindKernelStack, uint8(k.Bits), [4]uint32{uint32(k.K), uint32(k.C), uint32(k.KH), uint32(k.KW)}, k.Data)
}

// ReadKernelStack deserializes a kernel stack.
func ReadKernelStack(r io.Reader) (*tensor.KernelStack, error) {
	h, data, err := readAll(r, kindKernelStack)
	if err != nil {
		return nil, err
	}
	k := tensor.NewKernelStack(int(h.Dims[0]), int(h.Dims[1]), int(h.Dims[2]), int(h.Dims[3]), int(h.Bits))
	copy(k.Data, data)
	return k, nil
}

// WriteOutputMap serializes o.
func WriteOutputMap(w io.Writer, o *tensor.OutputMap) error {
	return writeAll(w, kindOutputMap, 32, [4]uint32{uint32(o.K), uint32(o.H), uint32(o.W), 1}, o.Data)
}

// ReadOutputMap deserializes an output map.
func ReadOutputMap(r io.Reader) (*tensor.OutputMap, error) {
	h, data, err := readAll(r, kindOutputMap)
	if err != nil {
		return nil, err
	}
	o := tensor.NewOutputMap(int(h.Dims[0]), int(h.Dims[1]), int(h.Dims[2]))
	copy(o.Data, data)
	return o, nil
}

// SaveFeatureMap writes f to path.
func SaveFeatureMap(path string, f *tensor.FeatureMap) error {
	return save(path, func(w io.Writer) error { return WriteFeatureMap(w, f) })
}

// LoadFeatureMap reads a feature map from path.
func LoadFeatureMap(path string) (*tensor.FeatureMap, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ReadFeatureMap(fh)
}

// SaveKernelStack writes k to path.
func SaveKernelStack(path string, k *tensor.KernelStack) error {
	return save(path, func(w io.Writer) error { return WriteKernelStack(w, k) })
}

// LoadKernelStack reads a kernel stack from path.
func LoadKernelStack(path string) (*tensor.KernelStack, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ReadKernelStack(fh)
}

// save writes crash-safely: a kill mid-write leaves the previous file (or
// nothing), never a truncated .rstt that would fail its crc on load.
func save(path string, write func(io.Writer) error) error {
	return safeio.WriteTo(path, 0o644, write)
}
