package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ristretto/internal/faultinject"
	"ristretto/internal/telemetry"
)

// TestOverloadSheds proves the admission gate bounds work at saturation:
// with 2 slots + 2 queue places and every admitted request pinned for
// 150ms, a burst of 30 must shed the overflow synchronously with
// 429 + Retry-After while queue depth never exceeds slots + queue.
func TestOverloadSheds(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 2
		c.MaxQueue = 2
		// Disable memoization: this test hammers one identical body, which
		// the cache would collapse into a single computation instead of
		// exercising the admission gate.
		c.CacheEntries = -1
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, DelayProb: 1, Delay: 150 * time.Millisecond})
	})

	const burst = 30
	statuses := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/model", "application/json",
				strings.NewReader(`{"net":"AlexNet","scale":32}`))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	if ok < 2 || ok > 4 {
		t.Errorf("served %d requests, want 2..4 (slots + queue)", ok)
	}
	if shed != burst-ok {
		t.Errorf("shed %d, want %d (burst minus served)", shed, burst-ok)
	}
	if got := s.shed.Load(); got != int64(shed) {
		t.Errorf("shed counter %d != observed 429s %d", got, shed)
	}
	// Queue depth (queued + in-flight) must have stayed within the bound:
	// memory at saturation is slots + queue places, not the burst size.
	if depth := s.reg.Snapshot().Histograms["server.queue_depth"]; depth.Max > 4 {
		t.Errorf("queue depth peaked at %d, bound is 4", depth.Max)
	}
	if s.QueueDepth() != 0 {
		t.Errorf("queue depth %d after drain, want 0", s.QueueDepth())
	}
}

// TestPanicIsolation proves a panicking request is an isolated 500: the
// process (and the worker slot) survives, and health stays green.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, Panic: 1})
	})
	for i := 0; i < 3; i++ {
		resp, b := post(t, ts, "/v1/model", `{"net":"AlexNet","scale":32}`)
		if resp.StatusCode != http.StatusInternalServerError || !bytes.Contains(b, []byte("panicked")) {
			t.Fatalf("request %d: got %d %s, want 500 mentioning the panic", i, resp.StatusCode, b)
		}
	}
	if got := s.panics.Load(); got != 3 {
		t.Fatalf("panics_recovered = %d, want 3", got)
	}
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d after panics, want 200", resp.StatusCode)
	}
	// The slots all released: a clean server on the same admission numbers
	// would now serve, which classify() already guarantees via MapCfg — but
	// prove it end to end by checking queue depth returned to zero.
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after panics, want 0", s.QueueDepth())
	}
}

// TestBreakerDegradesToAnalytic proves the degradation ladder: when queue
// wait crosses the breaker threshold, /v1/sim answers from the analytic
// model flagged degraded=true instead of running the cycle simulator.
func TestBreakerDegradesToAnalytic(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 4
		c.BreakerThreshold = time.Millisecond
		c.BreakerCooldown = 10 * time.Second
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, DelayProb: 1, Delay: 100 * time.Millisecond})
	})

	// Occupy the single slot for ~100ms.
	blockerDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/model", "application/json",
			strings.NewReader(`{"net":"AlexNet","scale":32}`))
		if err != nil {
			blockerDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		blockerDone <- resp.StatusCode
	}()
	time.Sleep(30 * time.Millisecond) // let the blocker take the slot

	// This sim request queues behind the blocker; its own wait (~70ms)
	// crosses the 1ms threshold at admission, so it degrades itself.
	resp, b := post(t, ts, "/v1/sim", `{"net":"ResNet-18","layer":"conv3_2","scale":32}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued sim = %d: %s", resp.StatusCode, b)
	}
	var sr SimResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("bad sim response: %v", err)
	}
	if !sr.Degraded || sr.Engine != "analytic" {
		t.Fatalf("queued sim not degraded: engine=%q degraded=%v", sr.Engine, sr.Degraded)
	}
	if sr.Cycles <= 0 {
		t.Fatalf("degraded answer has no estimate: %+v", sr)
	}
	if !s.BreakerOpen() || s.brk.Trips() < 1 {
		t.Fatalf("breaker open=%v trips=%d, want open with >= 1 trip", s.BreakerOpen(), s.brk.Trips())
	}
	if got := s.degraded.Load(); got < 1 {
		t.Fatalf("degraded counter = %d, want >= 1", got)
	}
	if st := <-blockerDone; st != http.StatusOK {
		t.Fatalf("blocker request finished %d, want 200", st)
	}
}

// TestGracefulDrain proves the SIGTERM path end to end minus the signal:
// StartDrain flips readiness and rejects new work with 503 while a request
// already in flight completes, and http.Server.Shutdown returns cleanly.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{
		Registry:     telemetry.NewRegistry(),
		DefaultScale: 32,
		Fault:        faultinject.New(faultinject.Spec{Seed: 1, DelayProb: 1, Delay: 200 * time.Millisecond}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	inflightDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/model", "application/json",
			strings.NewReader(`{"net":"AlexNet","scale":32}`))
		if err != nil {
			inflightDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflightDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // request is now inside its 200ms delay

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/model", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("new work while draining = %d %s, want 503 draining", resp.StatusCode, body)
	}
	if got := s.drainRejects.Load(); got != 1 {
		t.Fatalf("drain_rejects = %d, want 1", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v (in-flight work did not finish)", err)
	}
	if st := <-inflightDone; st != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200 despite drain", st)
	}
}
