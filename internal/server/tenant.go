package server

// This file holds the multi-tenant QoS layer: request classification
// (tenant identity and priority class from headers) and per-tenant
// token-bucket quotas. Together with the class-aware admission queue
// (admission.go) and the two-level breaker they turn the PR 5 global
// robustness envelope into a per-class policy: batch traffic is the first
// to be quota-denied, the first to be shed when the queue fills, and the
// first to be degraded to the analytic model — interactive traffic keeps
// cycle-sim fidelity until the daemon is hard-overloaded.

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"ristretto/internal/telemetry"
)

// priorityClass is a request's scheduling class. Interactive is the
// default and the privileged class; batch is the best-effort class that
// sheds and degrades first.
type priorityClass int

const (
	classInteractive priorityClass = iota
	classBatch
)

// String returns the class's wire name ("interactive" or "batch").
func (c priorityClass) String() string {
	if c == classBatch {
		return "batch"
	}
	return "interactive"
}

// TenantHeader and PriorityHeader are the request headers carrying the
// multi-tenant QoS contract. Absent headers select the default tenant and
// the interactive class, so single-tenant clients need no changes.
const (
	TenantHeader   = "X-Tenant"
	PriorityHeader = "X-Priority"
)

// defaultTenant is the bucket identity used when no X-Tenant header is sent.
const defaultTenant = "default"

// tenantCtx is one request's resolved QoS identity.
type tenantCtx struct {
	tenant string
	class  priorityClass
}

// classify resolves a request's tenant and priority class from its headers.
// An unknown priority value is a client error (400).
func classify(r *http.Request) (tenantCtx, *apiError) {
	tc := tenantCtx{tenant: defaultTenant, class: classInteractive}
	if t := r.Header.Get(TenantHeader); t != "" {
		if len(t) > 128 {
			return tc, badRequest("%s header over 128 bytes", TenantHeader)
		}
		tc.tenant = t
	}
	switch p := strings.ToLower(r.Header.Get(PriorityHeader)); p {
	case "", "interactive":
	case "batch":
		tc.class = classBatch
	default:
		return tc, badRequest("invalid %s %q (allowed: interactive, batch)", PriorityHeader, p)
	}
	return tc, nil
}

// bucket is one tenant's token-bucket state, refilled lazily on access.
type bucket struct {
	tokens float64
	last   time.Time
}

// quotaTable holds the per-tenant token buckets. Every tenant gets the same
// rate/burst (per-tenant overrides would live here); tenant cardinality is
// bounded by maxTenants — tenants beyond the bound share one overflow
// bucket so the table's memory stays O(maxTenants) under tenant-name abuse.
type quotaTable struct {
	mu         sync.Mutex
	rate       float64 // tokens per second; <= 0 disables quotas entirely
	burst      float64
	maxTenants int
	m          map[string]*bucket
	now        func() time.Time // test hook; nil = time.Now
}

// overflowTenant is the shared bucket identity for tenants beyond the
// cardinality bound.
const overflowTenant = "\x00overflow"

func newQuotaTable(rate, burst float64, maxTenants int) *quotaTable {
	return &quotaTable{rate: rate, burst: burst, maxTenants: maxTenants, m: map[string]*bucket{}}
}

// take spends one token from the tenant's bucket, reporting false when the
// bucket is empty (the request should be quota-denied with 429). A nil or
// disabled table admits everything.
func (q *quotaTable) take(tenant string) bool {
	if q == nil || q.rate <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	if q.now != nil {
		now = q.now()
	}
	b, ok := q.m[tenant]
	if !ok {
		if len(q.m) >= q.maxTenants {
			tenant = overflowTenant
			b = q.m[tenant]
		}
		if b == nil {
			b = &bucket{tokens: q.burst, last: now}
			q.m[tenant] = b
		}
	}
	b.tokens += q.rate * now.Sub(b.last).Seconds()
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tracked reports how many tenant buckets currently exist, for /metrics.
func (q *quotaTable) tracked() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return int64(len(q.m))
}

// classMetrics are one priority class's counters, resolved at construction
// so the request path never touches the registry map.
type classMetrics struct {
	requests *telemetry.Counter
	shed     *telemetry.Counter
	degraded *telemetry.Counter
	ok       *telemetry.Counter
}
