package server

// This file adapts the repository's engines to request/response form. Every
// function here runs inside the execute envelope (admission slot held,
// deadline armed, panics isolated into runner CellErrors), so the engines
// stay oblivious to HTTP.

import (
	"context"
	"math/rand"

	"ristretto/internal/atom"
	"ristretto/internal/balance"
	"ristretto/internal/baselines/bitfusion"
	"ristretto/internal/baselines/laconic"
	"ristretto/internal/baselines/scnn"
	"ristretto/internal/baselines/snap"
	"ristretto/internal/baselines/sparten"
	"ristretto/internal/conformance"
	"ristretto/internal/energy"
	"ristretto/internal/experiments"
	"ristretto/internal/model"
	"ristretto/internal/quant"
	"ristretto/internal/ristretto"
	"ristretto/internal/workload"
)

func balancePolicy(name string) balance.Policy {
	switch name {
	case "w":
		return balance.WeightOnly
	case "none":
		return balance.None
	default:
		return balance.WeightAct
	}
}

func energySplit(m energy.Model, c energy.Counters) EnergyPJ {
	s := m.Split(c)
	return EnergyPJ{ComputePJ: s.ComputePJ, OnChipPJ: s.OnChipPJ, DRAMPJ: s.OffChipPJ, TotalPJ: s.Total()}
}

// scaledLayer resolves a layer's geometry at the bench scale — the same
// shape b.Stats measures and the sim endpoint simulates.
func scaledLayer(seed int64, scale int, n *model.Network, layerName string) model.Layer {
	b := experiments.NewQuickBench(seed, scale)
	l, _ := b.Scaled(n).Layer(layerName) // existence validated with the request
	return l
}

// runModel answers a model request with the analytic estimator — the same
// computation ristretto-sim performs, minus the printing.
func (s *Server) runModel(_ context.Context, req *ModelRequest) (*ModelResponse, error) {
	b := experiments.NewQuickBench(req.Seed, req.Scale)
	b.Nets = []string{req.Net}
	n := b.Networks()[0]
	stats := b.Stats(n, req.Precision, atom.Granularity(req.Gran))

	m := energy.Default()
	var cycles int64
	var cnt energy.Counters
	switch req.Accel {
	case "ristretto", "ristretto-ns":
		cfg := ristretto.Config{
			Tiles:  req.Tiles,
			Tile:   ristretto.TileConfig{Mults: req.Mults, Gran: atom.Granularity(req.Gran)},
			Policy: balancePolicy(req.Balance),
			Dense:  req.Accel == "ristretto-ns",
		}
		perf := ristretto.EstimateNetwork(stats, cfg)
		cycles, cnt = perf.Cycles, perf.Counters
		m = energy.ModelForGranularity(req.Gran)
	case "bitfusion":
		cycles, cnt = bitfusion.EstimateNetwork(stats, bitfusion.DefaultConfig())
	case "laconic":
		cycles, cnt = laconic.EstimateNetwork(stats, laconic.DefaultConfig())
	case "laconic-mod":
		cycles, cnt = laconic.EstimateNetworkModified(stats, laconic.DefaultConfig())
	case "sparten":
		cycles, cnt = sparten.EstimateNetwork(stats, sparten.DefaultConfig())
	case "sparten-mp":
		cycles, cnt = sparten.EstimateNetwork(stats, sparten.Config{CUs: 32, MP: true})
	case "scnn":
		cycles, cnt = scnn.EstimateNetwork(stats, scnn.DefaultConfig())
	case "snap":
		cycles, cnt = snap.EstimateNetwork(stats, snap.DefaultConfig())
	}
	return &ModelResponse{
		Net:       req.Net,
		Accel:     req.Accel,
		Precision: req.Precision,
		Layers:    len(n.Layers),
		MACs:      n.MACs(),
		Cycles:    cycles,
		MS:        float64(cycles) / 500e3,
		Energy:    energySplit(m, cnt),
		DRAMBytes: cnt.DRAMBytes,
		Engine:    "analytic",
	}, nil
}

// simOperands synthesizes the layer workload a sim request names. The seed
// derivation folds in every identifying label so distinct requests get
// decorrelated operands while identical requests stay bit-reproducible.
func simOperands(req *SimRequest) *workload.Gen {
	return workload.NewGen(workload.DeriveSeed(req.Seed, "serve-sim", req.Net, req.Layer, req.Precision))
}

// runSimCore answers a sim request with the cycle-accurate lockstep core
// simulator — the expensive, faithful rung of the degradation ladder.
func (s *Server) runSimCore(_ context.Context, req *SimRequest) (*SimResponse, error) {
	bits, _ := precisionBits(req.Precision)
	n, _ := model.ByName(req.Net)
	l := scaledLayer(req.Seed, req.Scale, n, req.Layer)
	g := simOperands(req)
	f, k := g.LayerOperands(l, bits, bits, workload.EvalTargets(req.Net, bits, bits))
	cfg := ristretto.CoreSimConfig{
		Tiles:  req.Tiles,
		Tile:   ristretto.TileConfig{Mults: req.Mults, Gran: atom.Granularity(req.Gran)},
		TileW:  req.TileW,
		TileH:  req.TileH,
		Policy: balancePolicy(req.Balance),
	}
	res := ristretto.SimulateCore(f, k, l.Stride, l.Pad, cfg)
	var busy int64
	for _, b := range res.TileBusy {
		busy += b
	}
	util := 0.0
	if res.Cycles > 0 && len(res.TileBusy) > 0 {
		util = float64(busy) / float64(res.Cycles*int64(len(res.TileBusy)))
	}
	return &SimResponse{
		Net:         req.Net,
		Layer:       req.Layer,
		Precision:   req.Precision,
		Cycles:      res.Cycles,
		Utilization: util,
		DrainWait:   res.DrainWait,
		LoadCycles:  res.LoadCycles,
		Stalls:      res.Stalls,
		Conflicts:   res.Conflicts,
		Energy:      energySplit(energy.ModelForGranularity(req.Gran), res.Counters),
		Engine:      "core-sim",
	}, nil
}

// runSimAnalytic is the degraded rung: the analytic latency model over the
// same synthesized layer, orders of magnitude cheaper than the cycle loop.
// Responses carry degraded=true so clients can tell fidelity dropped.
func (s *Server) runSimAnalytic(_ context.Context, req *SimRequest) (*SimResponse, error) {
	bits, _ := precisionBits(req.Precision)
	n, _ := model.ByName(req.Net)
	l := scaledLayer(req.Seed, req.Scale, n, req.Layer)
	g := simOperands(req)
	st := g.LayerStats(l, bits, bits, atom.Granularity(req.Gran), workload.EvalTargets(req.Net, bits, bits), true)
	cfg := ristretto.Config{
		Tiles:  req.Tiles,
		Tile:   ristretto.TileConfig{Mults: req.Mults, Gran: atom.Granularity(req.Gran)},
		Policy: balancePolicy(req.Balance),
	}
	lp := ristretto.EstimateLayer(st, cfg)
	return &SimResponse{
		Net:         req.Net,
		Layer:       req.Layer,
		Precision:   req.Precision,
		Cycles:      lp.Cycles,
		Utilization: lp.Utilization,
		Energy:      energySplit(energy.ModelForGranularity(req.Gran), lp.Counters),
		Engine:      "analytic",
		Degraded:    true,
	}, nil
}

// runQuant answers a quant request with the statistical quantization sweep
// behind Figure 1 (see cmd/ristretto-quant).
func (s *Server) runQuant(_ context.Context, req *QuantRequest) (*QuantResponse, error) {
	rng := rand.New(rand.NewSource(req.Seed))
	raw := make([]float64, req.N)
	for i := range raw {
		raw[i] = rng.NormFloat64()
	}
	g := atom.Granularity(req.Gran)
	resp := &QuantResponse{N: req.N, Gran: req.Gran}
	for _, bits := range req.Bits {
		w := quant.QuantizeSigned(raw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultWeightClip(bits)})
		a := quant.QuantizeUnsigned(raw, 1, quant.Config{Bits: bits, ClipSigma: quant.DefaultActClip(bits)})
		if req.PruneW > 0 {
			quant.PruneToDensity(w, req.PruneW)
		}
		if req.PruneA > 0 {
			quant.PruneToDensity(a, req.PruneA)
		}
		ws := quant.Measure(w, bits, g)
		as := quant.Measure(a, bits, g)
		resp.Rows = append(resp.Rows, QuantRow{
			Bits:    bits,
			Weights: QuantStats{ValueDensity: ws.ValueDensity, AtomDensity: ws.AtomDensity, StreamAtoms: ws.NonZeroAtoms, DenseAtoms: ws.DenseAtoms},
			Acts:    QuantStats{ValueDensity: as.ValueDensity, AtomDensity: as.AtomDensity, StreamAtoms: as.NonZeroAtoms, DenseAtoms: as.DenseAtoms},
		})
	}
	return resp, nil
}

// runConformance answers a conformance request by replaying a slice of the
// differential sweep — a live spot-check that the engines still agree with
// the reference, useful as a deep health probe.
func (s *Server) runConformance(_ context.Context, req *ConformanceRequest) (*ConformanceResponse, error) {
	var engines []conformance.Engine
	if req.Engine == "" || req.Engine == "all" {
		engines = conformance.All()
	} else {
		e, _ := conformance.ByName(req.Engine) // validated with the request
		engines = []conformance.Engine{e}
	}
	resp := &ConformanceResponse{OK: true}
	for _, rep := range conformance.Sweep(engines, req.Seed, req.Cases, false) {
		r := ConformanceReport{Engine: rep.Engine, Analytic: rep.Analytic, Cases: rep.Cases, Failures: len(rep.Failures)}
		if len(rep.Failures) > 0 {
			resp.OK = false
			r.FirstFailure = rep.Failures[0].Mismatch.Error()
		}
		resp.Reports = append(resp.Reports, r)
	}
	return resp, nil
}
