// Package server is the hardened HTTP/JSON serving layer over the
// repository's engines: the analytic performance model, the cycle-accurate
// core simulator, the quantization sweep and the differential conformance
// harness, exposed as request/response endpoints by cmd/ristretto-serve.
//
// The robustness layer wraps every compute endpoint the same way:
//
//   - strict request validation with a body-size limit (unknown fields and
//     out-of-range parameters are 400s, oversized bodies 413s);
//   - multi-tenant QoS: per-tenant token-bucket quotas (X-Tenant) and two
//     priority classes (X-Priority: interactive|batch) — batch traffic is
//     quota-denied, queue-shed and fidelity-degraded before interactive
//     traffic (see tenant.go);
//   - memoization: /v1/model and /v1/quant are pure functions of their
//     canonicalized request, so hot configurations are answered from a
//     content-keyed LRU + singleflight cache in microseconds without
//     touching the admission queue (see cache.go);
//   - coalescing: compatible /v1/sim requests arriving within the batch
//     window share one admission slot and one multi-cell sweep, with
//     per-waiter deadline fan-out (see batch.go);
//   - admission control over a bounded queue — at most MaxConcurrent
//     requests compute, at most MaxQueue wait, everything beyond is shed
//     synchronously with 429 + Retry-After so memory stays bounded at
//     saturation;
//   - per-request deadlines propagated via context and enforced by the
//     runner's per-cell timeout;
//   - per-request panic isolation: the work runs as a one-cell
//     runner.MapCfg call, so a panicking engine (or injected fault) is
//     recovered into a *runner.CellError and answered with 500 while the
//     process stays up;
//   - a circuit breaker watching queue latency: when admitted requests
//     wait longer than the threshold, /v1/sim degrades from the cycle
//     simulator to the analytic model, flagged degraded=true — the paper's
//     own fidelity/throughput trade-off as a load-shedding valve;
//   - graceful drain: StartDrain flips /readyz to 503 and rejects new
//     compute work while in-flight requests finish.
//
// /healthz, /readyz and /metrics are backed by internal/telemetry;
// /metrics reports per-endpoint counters and latency histograms with
// p50/p95/p99, the shed/degrade/panic counters and the queue-depth gauge.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ristretto/internal/cellcache"
	"ristretto/internal/faultinject"
	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

// Config tunes the robustness envelope. The zero value of every field
// selects a production-sane default (see withDefaults).
type Config struct {
	// MaxConcurrent bounds requests computing simultaneously (the worker
	// slots feeding the runner pool). 0 = NumCPU.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a slot; excess load is shed
	// with 429. 0 = 64.
	MaxQueue int
	// DefaultDeadline bounds a request that names no deadline_ms; 0 = 15s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines; 0 = 2m.
	MaxDeadline time.Duration
	// MaxBodyBytes caps request bodies; 0 = 1 MiB.
	MaxBodyBytes int64
	// BreakerThreshold is the queue wait that opens the degradation
	// breaker; 0 = 250ms. Negative disables degradation.
	BreakerThreshold time.Duration
	// BreakerCooldown is how long the breaker stays open after the last
	// threshold crossing; 0 = 2s.
	BreakerCooldown time.Duration
	// DefaultScale is the spatial scale-down applied when a request names
	// none; 0 = 16 (quick-bench sizing, keeps default requests snappy).
	DefaultScale int
	// MaxSimValues caps the operand volume of one sim request; 0 = 1<<24.
	MaxSimValues int64
	// MaxQuantSamples caps one quant request's population; 0 = 2_000_000.
	MaxQuantSamples int64
	// MaxConformanceCases caps one conformance request's sweep; 0 = 200.
	MaxConformanceCases int
	// CacheEntries bounds the /v1/model + /v1/quant memo cache (LRU);
	// 0 = 4096. Negative disables memoization.
	CacheEntries int
	// BatchWindow is how long a /v1/sim request waits for batchmates
	// before its batch fires; 0 = 1ms. Negative disables coalescing.
	BatchWindow time.Duration
	// MaxBatch caps distinct simulations per batch; 0 = 16.
	MaxBatch int
	// BatchQueueShare caps the admission-queue places the batch priority
	// class may occupy, so batch sheds before interactive under mixed
	// overload; 0 = MaxQueue/2 (minimum 1).
	BatchQueueShare int
	// BreakerHardFactor scales BreakerThreshold up to the hard-open level
	// at which even interactive sim requests degrade (batch degrades at
	// the soft level, i.e. BreakerThreshold itself); 0 = 4.
	BreakerHardFactor int
	// TenantRate is each tenant's token-bucket refill in requests/second;
	// 0 disables quotas entirely.
	TenantRate float64
	// TenantBurst is each tenant's bucket capacity; 0 = max(1, TenantRate).
	TenantBurst float64
	// MaxTenants bounds tracked tenant buckets (overflow tenants share one
	// bucket); 0 = 10000.
	MaxTenants int
	// CellCache, when non-nil, fronts the /v1/cell worker endpoint with the
	// fleet's content-addressed result store: repeat and concurrent requests
	// for one cell fingerprint compute once and replay byte-identically.
	CellCache *cellcache.Cache
	// Fault, when non-nil, injects the schedule into request handling:
	// each request is one cell (in arrival order), so seed-deterministic
	// panics/transients/delays exercise the isolation machinery under
	// load. Nil costs nothing.
	Fault *faultinject.Schedule
	// Registry receives the server's metrics; nil = telemetry.Default.
	// New enables it — a serving daemon without metrics is blind.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.NumCPU()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 15 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 250 * time.Millisecond
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.DefaultScale <= 0 {
		c.DefaultScale = 16
	}
	if c.MaxSimValues <= 0 {
		c.MaxSimValues = 1 << 24
	}
	if c.MaxQuantSamples <= 0 {
		c.MaxQuantSamples = 2_000_000
	}
	if c.MaxConformanceCases <= 0 {
		c.MaxConformanceCases = 200
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.BatchQueueShare <= 0 {
		c.BatchQueueShare = c.MaxQueue / 2
		if c.BatchQueueShare < 1 {
			c.BatchQueueShare = 1
		}
	}
	if c.BreakerHardFactor <= 0 {
		c.BreakerHardFactor = 4
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = c.TenantRate
		if c.TenantBurst < 1 {
			c.TenantBurst = 1
		}
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 10_000
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// epMetrics are one endpoint's counters and latency histogram, resolved
// once at construction so the request path never touches the registry map.
type epMetrics struct {
	requests *telemetry.Counter
	ok       *telemetry.Counter
	errs     *telemetry.Counter
	latency  *telemetry.Histogram
}

// Server is the daemon's state: the admission gate, the breaker, drain
// status and metric handles. Construct with New; serve via Handler.
type Server struct {
	cfg      Config
	reg      *telemetry.Registry
	adm      *admission
	brk      *breaker
	memo     *memoCache       // nil when memoization is disabled
	batch    *batcher         // nil when coalescing is disabled
	cells    *cellcache.Cache // nil when the cell cache is disabled
	quota    *quotaTable
	class    map[priorityClass]*classMetrics
	fault    func(cell, attempt int) error
	seq      atomic.Int64
	draining atomic.Bool
	started  time.Time
	ep       map[string]*epMetrics

	shed         *telemetry.Counter
	degraded     *telemetry.Counter
	panics       *telemetry.Counter
	timeouts     *telemetry.Counter
	drainRejects *telemetry.Counter
	quotaDenied  *telemetry.Counter
	queueWait    *telemetry.Histogram
	queueDepth   *telemetry.Histogram
	tenants      *telemetry.Gauge
}

// New builds a server from the config and enables its metrics registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	r := cfg.Registry
	r.SetEnabled(true)
	s := &Server{
		cfg:     cfg,
		reg:     r,
		adm:     newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.BatchQueueShare),
		brk:     newBreaker(cfg.BreakerThreshold, cfg.BreakerHardFactor, cfg.BreakerCooldown),
		started: time.Now(),
		ep:      map[string]*epMetrics{},
		class:   map[priorityClass]*classMetrics{},

		shed:         r.Counter("server.shed"),
		degraded:     r.Counter("server.degraded"),
		panics:       r.Counter("server.panics_recovered"),
		timeouts:     r.Counter("server.deadline_timeouts"),
		drainRejects: r.Counter("server.drain_rejects"),
		quotaDenied:  r.Counter("server.quota.denied"),
		queueWait:    r.Histogram("server.queue_wait_ns"),
		queueDepth:   r.Histogram("server.queue_depth"),
		tenants:      r.Gauge("server.quota.tenants"),
	}
	for _, ep := range []string{"model", "sim", "quant", "conformance", "cell"} {
		s.ep[ep] = &epMetrics{
			requests: r.Counter("server." + ep + ".requests"),
			ok:       r.Counter("server." + ep + ".ok"),
			errs:     r.Counter("server." + ep + ".errors"),
			latency:  r.Histogram("server." + ep + ".latency_ns"),
		}
	}
	for _, c := range []priorityClass{classInteractive, classBatch} {
		n := c.String()
		s.class[c] = &classMetrics{
			requests: r.Counter("server.class." + n + ".requests"),
			shed:     r.Counter("server.class." + n + ".shed"),
			degraded: r.Counter("server.class." + n + ".degraded"),
			ok:       r.Counter("server.class." + n + ".ok"),
		}
	}
	if cfg.CacheEntries > 0 {
		s.memo = newMemoCache(cfg.CacheEntries, r)
	}
	if cfg.BatchWindow > 0 {
		s.batch = newBatcher(cfg.BatchWindow, cfg.MaxBatch, s.runBatch, r)
	}
	if cfg.TenantRate > 0 {
		s.quota = newQuotaTable(cfg.TenantRate, cfg.TenantBurst, cfg.MaxTenants)
	}
	if cfg.Fault != nil {
		s.fault = cfg.Fault.Hook()
	}
	s.cells = cfg.CellCache
	return s
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/model", s.handleModel)
	mux.HandleFunc("/v1/sim", s.handleSim)
	mux.HandleFunc("/v1/quant", s.handleQuant)
	mux.HandleFunc("/v1/conformance", s.handleConformance)
	mux.HandleFunc("/v1/cell", s.handleCell)
	return mux
}

// StartDrain begins graceful shutdown: /readyz flips to 503 and new
// compute requests are rejected with 503 + Retry-After, while requests
// already admitted keep running. The HTTP listener itself is closed by the
// caller (http.Server.Shutdown), which also waits for in-flight requests.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueueDepth reports queued + in-flight compute requests.
func (s *Server) QueueDepth() int64 { return s.adm.depth() }

// BreakerOpen reports whether sim requests currently degrade.
func (s *Server) BreakerOpen() bool { return s.brk.open() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// MetricsResponse is the /metrics payload: the registry snapshot plus the
// live gauges a scraper cannot derive from counters.
type MetricsResponse struct {
	UptimeSeconds   float64            `json:"uptime_seconds"`
	Draining        bool               `json:"draining"`
	BreakerOpen     bool               `json:"breaker_open"`
	BreakerHardOpen bool               `json:"breaker_hard_open"`
	BreakerTrips    int64              `json:"breaker_trips"`
	BreakerHard     int64              `json:"breaker_hard_trips"`
	QueueDepth      int64              `json:"queue_depth"`
	Inflight        int64              `json:"inflight"`
	CacheEntries    int64              `json:"cache_entries"`
	Snapshot        telemetry.Snapshot `json:"snapshot"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var cacheLen int64
	if s.memo != nil {
		cacheLen = int64(s.memo.len())
	}
	s.tenants.Set(s.quota.tracked())
	writeJSON(w, http.StatusOK, MetricsResponse{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Draining:        s.draining.Load(),
		BreakerOpen:     s.brk.open(),
		BreakerHardOpen: s.brk.hardOpen(),
		BreakerTrips:    s.brk.Trips(),
		BreakerHard:     s.brk.HardTrips(),
		QueueDepth:      s.adm.depth(),
		Inflight:        s.adm.Inflight(),
		CacheEntries:    cacheLen,
		Snapshot:        s.reg.Snapshot(),
	})
}

// admitQoS classifies the request's tenant/class and spends a quota token.
// It reports false after writing the error response itself.
func (s *Server) admitQoS(w http.ResponseWriter, r *http.Request, ep string) (tenantCtx, bool) {
	tc, aerr := classify(r)
	if aerr != nil {
		s.fail(w, ep, aerr)
		return tc, false
	}
	s.class[tc.class].requests.Inc()
	if !s.quota.take(tc.tenant) {
		s.quotaDenied.Inc()
		s.fail(w, ep, &apiError{Status: http.StatusTooManyRequests,
			Msg: "tenant quota exhausted", Quota: tc.tenant, RetryAfter: 1})
		return tc, false
	}
	return tc, true
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req ModelRequest
	if !s.decode(w, r, "model", &req) {
		return
	}
	if aerr := req.validate(&s.cfg); aerr != nil {
		s.fail(w, "model", aerr)
		return
	}
	tc, ok := s.admitQoS(w, r, "model")
	if !ok {
		return
	}
	s.serveMemoized(w, r, "model", tc, req.DeadlineMS, req.memoKey(), func(ctx context.Context) (any, error) {
		return s.runModel(ctx, &req)
	})
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if !s.decode(w, r, "sim", &req) {
		return
	}
	if aerr := req.validate(&s.cfg); aerr != nil {
		s.fail(w, "sim", aerr)
		return
	}
	tc, ok := s.admitQoS(w, r, "sim")
	if !ok {
		return
	}
	if s.batch != nil {
		start := time.Now()
		var seq int64
		if s.fault != nil {
			seq = s.seq.Add(1)
		}
		sw := s.batch.submit(req.memoKey(), &req, tc.class, seq)
		s.awaitBatched(w, r, tc, req.DeadlineMS, start, sw)
		return
	}
	s.execute(w, r, "sim", tc, req.DeadlineMS, func(ctx context.Context) (any, error) {
		// The breaker is consulted after admission, inside the isolated
		// cell: the queue wait this request just experienced has already
		// been observed, so an overloaded daemon degrades the very request
		// that found the queue slow. Degradation is class-ordered: batch
		// degrades at the soft level, interactive only at the hard level.
		if s.brk.degrade(tc.class) {
			s.degraded.Inc()
			s.class[tc.class].degraded.Inc()
			return s.runSimAnalytic(ctx, &req)
		}
		return s.runSimCore(ctx, &req)
	})
}

func (s *Server) handleQuant(w http.ResponseWriter, r *http.Request) {
	var req QuantRequest
	if !s.decode(w, r, "quant", &req) {
		return
	}
	if aerr := req.validate(&s.cfg); aerr != nil {
		s.fail(w, "quant", aerr)
		return
	}
	tc, ok := s.admitQoS(w, r, "quant")
	if !ok {
		return
	}
	s.serveMemoized(w, r, "quant", tc, req.DeadlineMS, req.memoKey(), func(ctx context.Context) (any, error) {
		return s.runQuant(ctx, &req)
	})
}

func (s *Server) handleConformance(w http.ResponseWriter, r *http.Request) {
	var req ConformanceRequest
	if !s.decode(w, r, "conformance", &req) {
		return
	}
	if aerr := req.validate(&s.cfg); aerr != nil {
		s.fail(w, "conformance", aerr)
		return
	}
	tc, ok := s.admitQoS(w, r, "conformance")
	if !ok {
		return
	}
	s.execute(w, r, "conformance", tc, req.DeadlineMS, func(ctx context.Context) (any, error) {
		return s.runConformance(ctx, &req)
	})
}

// decode enforces method, drain state and the strict body contract; it
// reports false after writing the error response itself.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, ep string, req any) bool {
	em := s.ep[ep]
	em.requests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, ep, &apiError{Status: http.StatusMethodNotAllowed, Msg: "use POST"})
		return false
	}
	if s.draining.Load() {
		s.drainRejects.Inc()
		s.fail(w, ep, &apiError{Status: http.StatusServiceUnavailable, Msg: "server is draining", RetryAfter: 1})
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.fail(w, ep, &apiError{Status: http.StatusRequestEntityTooLarge, Msg: fmt.Sprintf("body over %d bytes", mbe.Limit)})
			return false
		}
		s.fail(w, ep, badRequest("bad request body: %v", err))
		return false
	}
	if dec.More() {
		s.fail(w, ep, badRequest("trailing data after request object"))
		return false
	}
	return true
}

// compute runs one validated request through the robustness envelope:
// class-aware admission (shed on overflow), breaker observation, deadline,
// and the one-cell runner call that isolates panics and enforces the
// timeout. It returns the computed value or the failure to answer with.
// seedFn, when non-nil, derives the replay seed recorded on envelope-level
// cell failures (the /v1/cell endpoint passes the experiment-suite
// derivation so remote failures replay locally); nil leaves it zero.
func (s *Server) compute(r *http.Request, tc tenantCtx, deadlineMS int64, seedFn func(int) int64, work func(ctx context.Context) (any, error)) (any, *apiError) {
	release, wait, err := s.adm.admit(r.Context(), tc.class)
	s.queueDepth.Observe(s.adm.depth())
	switch {
	case errors.Is(err, errShed):
		s.shed.Inc()
		s.class[tc.class].shed.Inc()
		return nil, &apiError{Status: http.StatusTooManyRequests, Msg: "overloaded: queue full", RetryAfter: 1}
	case err != nil: // client gave up while queued
		return nil, &apiError{Status: http.StatusServiceUnavailable, Msg: "request cancelled while queued", RetryAfter: 1}
	}
	defer release()
	s.queueWait.Observe(wait.Nanoseconds())
	s.brk.observe(wait)

	d := s.resolveDeadline(deadlineMS)
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	cfg := runner.Cfg{Timeout: d, Seed: seedFn}
	if s.fault != nil {
		cell := int(s.seq.Add(1))
		cfg.Fault = func(_, attempt int) error { return s.fault(cell, attempt) }
	}
	res, rerr := runner.MapCfg(ctx, runner.Serial(), cfg, 1, func(int) (any, error) {
		return work(ctx)
	})
	if rerr != nil {
		return nil, s.classify(rerr)
	}
	return res[0], nil
}

// finish stamps the envelope fields and writes a successful response.
func (s *Server) finish(w http.ResponseWriter, ep string, tc tenantCtx, start time.Time, res any) {
	em := s.ep[ep]
	em.ok.Inc()
	s.class[tc.class].ok.Inc()
	elapsed := time.Since(start)
	em.latency.Observe(elapsed.Nanoseconds())
	if es, ok := res.(elapsedSetter); ok {
		es.setElapsed(float64(elapsed.Nanoseconds()) / 1e6)
	}
	writeJSON(w, http.StatusOK, res)
}

// execute is the cold, uncached request path: compute inside the envelope,
// then answer.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, ep string, tc tenantCtx, deadlineMS int64, work func(ctx context.Context) (any, error)) {
	start := time.Now()
	res, aerr := s.compute(r, tc, deadlineMS, nil, work)
	if aerr != nil {
		s.fail(w, ep, aerr)
		return
	}
	s.finish(w, ep, tc, start, res)
}

// serveMemoized answers a pure-function request through the memo cache:
// hits are served from the stored pristine value in microseconds without
// touching admission; misses elect one leader through the full compute
// envelope while concurrent identical requests wait on the in-flight
// result with their own deadlines.
func (s *Server) serveMemoized(w http.ResponseWriter, r *http.Request, ep string, tc tenantCtx, deadlineMS int64, key string, work func(ctx context.Context) (any, error)) {
	if s.memo == nil {
		s.execute(w, r, ep, tc, deadlineMS, work)
		return
	}
	start := time.Now()
	if v, ok := s.memo.get(key); ok {
		s.finish(w, ep, tc, start, v.memoClone(true))
		return
	}
	fl, v, leader := s.memo.join(key)
	if !leader {
		if v != nil { // filled while we raced to join
			s.finish(w, ep, tc, start, v.memoClone(true))
			return
		}
		deadline := time.NewTimer(s.resolveDeadline(deadlineMS))
		defer deadline.Stop()
		select {
		case <-fl.done:
			if fl.aerr != nil {
				s.fail(w, ep, fl.aerr)
				return
			}
			s.finish(w, ep, tc, start, fl.val.memoClone(true))
		case <-deadline.C:
			s.timeouts.Inc()
			s.fail(w, ep, &apiError{Status: http.StatusGatewayTimeout, Msg: "deadline exceeded"})
		case <-r.Context().Done():
			s.fail(w, ep, &apiError{Status: http.StatusServiceUnavailable, Msg: "client went away", RetryAfter: 1})
		}
		return
	}
	res, aerr := s.compute(r, tc, deadlineMS, nil, work)
	if aerr != nil {
		s.memo.complete(key, fl, nil, aerr)
		s.fail(w, ep, aerr)
		return
	}
	var pristine memoizable
	if m, ok := res.(memoizable); ok {
		pristine = m.memoClone(false)
	}
	s.memo.complete(key, fl, pristine, nil)
	s.finish(w, ep, tc, start, res)
}

// classify maps a runner failure to its HTTP shape: recovered panics are
// 500s (the request died, the process did not), deadline expiries 504s,
// injected transients 503s, apiErrors pass through, anything else 500.
// Classification uses the deepest CellError in the chain — the /v1/cell
// endpoint nests an experiment-level cell inside the request envelope's,
// and the inner one carries the stack/timeout evidence and replay seed.
// That CellError also rides along in wire form so remote callers (the
// fleet coordinator) can reconstruct the failure locally.
func (s *Server) classify(err error) *apiError {
	if ce := deepestCellError(err); ce != nil {
		wire := ce.Wire("")
		switch {
		case ce.Stack != nil:
			s.panics.Inc()
			log.Printf("server: recovered request panic: %v\n%s", ce.Err, ce.Stack)
			return &apiError{Status: http.StatusInternalServerError, Msg: "internal error: request panicked (isolated; see server log)", CellError: wire}
		case ce.TimedOut:
			s.timeouts.Inc()
			return &apiError{Status: http.StatusGatewayTimeout, Msg: "deadline exceeded", CellError: wire}
		case faultinject.IsTransient(ce.Err):
			return &apiError{Status: http.StatusServiceUnavailable, Msg: "transient fault, retry", RetryAfter: 1, CellError: wire}
		}
		var ae *apiError
		if errors.As(ce.Err, &ae) {
			return ae
		}
		return &apiError{Status: http.StatusInternalServerError, Msg: ce.Err.Error(), CellError: wire}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Inc()
		return &apiError{Status: http.StatusGatewayTimeout, Msg: "deadline exceeded"}
	}
	return &apiError{Status: http.StatusServiceUnavailable, Msg: err.Error(), RetryAfter: 1}
}

// deepestCellError walks the unwrap chain to the innermost *CellError.
// Nested MapCfg calls (request envelope around an experiment cell) each
// wrap one; the innermost carries the original failure's evidence.
func deepestCellError(err error) *runner.CellError {
	var last *runner.CellError
	for {
		var ce *runner.CellError
		if !errors.As(err, &ce) || ce == last {
			return last
		}
		last = ce
		err = ce.Err
	}
}

// fail writes an error response and bumps the endpoint's error counter.
func (s *Server) fail(w http.ResponseWriter, ep string, aerr *apiError) {
	if em, ok := s.ep[ep]; ok {
		em.errs.Inc()
	}
	if aerr.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(aerr.RetryAfter))
	}
	writeJSON(w, aerr.Status, aerr)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
