package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ristretto/internal/conformance"
	"ristretto/internal/faultinject"
	"ristretto/internal/telemetry"
)

// newTestServer builds an isolated server (private registry) and an
// httptest frontend. mutate adjusts the config before construction.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Registry: telemetry.NewRegistry(), DefaultScale: 32}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp, b
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", path, err)
	}
	return resp, b
}

func TestHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}
}

func TestModelEndpointDeterministic(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"net":"AlexNet","precision":"8b","scale":32,"seed":3}`
	var cycles [2]int64
	for i := range cycles {
		resp, b := post(t, ts, "/v1/model", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("model request = %d: %s", resp.StatusCode, b)
		}
		var mr ModelResponse
		if err := json.Unmarshal(b, &mr); err != nil {
			t.Fatalf("bad response JSON: %v", err)
		}
		if mr.Cycles <= 0 || mr.Degraded || mr.Engine != "analytic" {
			t.Fatalf("implausible model response: %+v", mr)
		}
		cycles[i] = mr.Cycles
	}
	if cycles[0] != cycles[1] {
		t.Fatalf("same request, different cycles: %d vs %d", cycles[0], cycles[1])
	}
}

func TestModelEndpointBaselines(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, accel := range []string{"ristretto-ns", "bitfusion", "scnn", "sparten-mp"} {
		body := fmt.Sprintf(`{"net":"AlexNet","precision":"4b","scale":32,"accel":%q}`, accel)
		resp, b := post(t, ts, "/v1/model", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s request = %d: %s", accel, resp.StatusCode, b)
		}
		var mr ModelResponse
		if err := json.Unmarshal(b, &mr); err != nil || mr.Cycles <= 0 {
			t.Fatalf("%s: implausible response %s (err %v)", accel, b, err)
		}
	}
}

func TestSimEndpointDeterministic(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"net":"ResNet-18","layer":"conv3_2","precision":"4b","scale":32,"seed":5}`
	var cycles [2]int64
	for i := range cycles {
		resp, b := post(t, ts, "/v1/sim", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sim request = %d: %s", resp.StatusCode, b)
		}
		var sr SimResponse
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatalf("bad response JSON: %v", err)
		}
		if sr.Cycles <= 0 || sr.Engine != "core-sim" || sr.Degraded {
			t.Fatalf("implausible sim response: %s", b)
		}
		if sr.Utilization <= 0 || sr.Utilization > 1 {
			t.Fatalf("utilization %v out of (0,1]", sr.Utilization)
		}
		cycles[i] = sr.Cycles
	}
	if cycles[0] != cycles[1] {
		t.Fatalf("same sim request, different cycles: %d vs %d", cycles[0], cycles[1])
	}
}

func TestQuantEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, b := post(t, ts, "/v1/quant", `{"bits":[8,2],"n":20000,"seed":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quant request = %d: %s", resp.StatusCode, b)
	}
	var qr QuantResponse
	if err := json.Unmarshal(b, &qr); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(qr.Rows))
	}
	for _, row := range qr.Rows {
		if row.Weights.ValueDensity <= 0 || row.Weights.ValueDensity > 1 {
			t.Fatalf("bits %d: weight value density %v out of (0,1]", row.Bits, row.Weights.ValueDensity)
		}
		if row.Acts.StreamAtoms <= 0 || row.Acts.DenseAtoms <= 0 {
			t.Fatalf("bits %d: empty act stream: %+v", row.Bits, row.Acts)
		}
	}
	// Narrower quantization must not lengthen the dense stream.
	if qr.Rows[1].Weights.DenseAtoms > qr.Rows[0].Weights.DenseAtoms {
		t.Fatalf("2b dense stream (%d) longer than 8b (%d)", qr.Rows[1].Weights.DenseAtoms, qr.Rows[0].Weights.DenseAtoms)
	}
}

func TestConformanceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, b := post(t, ts, "/v1/conformance", `{"engine":"csc","cases":3,"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("conformance request = %d: %s", resp.StatusCode, b)
	}
	var cr ConformanceResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if !cr.OK || len(cr.Reports) != 1 || cr.Reports[0].Failures != 0 {
		t.Fatalf("csc spot-check failed: %s", b)
	}

	resp, b = post(t, ts, "/v1/conformance", `{"engine":"all","cases":1,"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-engines request = %d: %s", resp.StatusCode, b)
	}
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if len(cr.Reports) != len(conformance.Names()) {
		t.Fatalf("all-engines sweep covered %d engines, registry has %d", len(cr.Reports), len(conformance.Names()))
	}
}

// TestValidation pins the strict-input contract across endpoints.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantMsg          string
	}{
		{"unknown field", "/v1/model", `{"bogus":1}`, 400, "unknown field"},
		{"unknown net", "/v1/model", `{"net":"LeNet-5"}`, 400, "unknown network"},
		{"bad precision", "/v1/model", `{"precision":"16b"}`, 400, "precision"},
		{"bad accel", "/v1/model", `{"accel":"tpu"}`, 400, "accel"},
		{"bad gran", "/v1/sim", `{"gran":7}`, 400, "gran"},
		{"mixed precision sim", "/v1/sim", `{"precision":"mix2/4"}`, 400, "precision"},
		{"unknown layer", "/v1/sim", `{"net":"AlexNet","layer":"conv9_9"}`, 400, "no layer"},
		{"zero cases", "/v1/conformance", `{"cases":-1}`, 400, "cases"},
		{"unknown engine", "/v1/conformance", `{"engine":"fpga"}`, 400, "unknown engine"},
		{"quant bits", "/v1/quant", `{"bits":[64]}`, 400, "bits"},
		{"quant n", "/v1/quant", `{"n":-5}`, 400, "invalid n"},
		{"trailing data", "/v1/model", `{} {}`, 400, "trailing"},
		{"not json", "/v1/model", `hello`, 400, "bad request body"},
	}
	for _, c := range cases {
		resp, b := post(t, ts, c.path, c.body)
		if resp.StatusCode != c.wantStatus || !bytes.Contains(b, []byte(c.wantMsg)) {
			t.Errorf("%s: got %d %s, want %d containing %q", c.name, resp.StatusCode, b, c.wantStatus, c.wantMsg)
		}
	}
}

// TestSimOperandCap pins the per-request workload bound: a layer whose
// operand volume exceeds MaxSimValues is refused before touching a slot.
func TestSimOperandCap(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxSimValues = 1000 })
	resp, b := post(t, ts, "/v1/sim", `{"net":"VGG-16","layer":"conv1_1","scale":1}`)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(b, []byte("cap")) {
		t.Fatalf("oversized sim = %d %s, want 400 mentioning the cap", resp.StatusCode, b)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, _ := get(t, ts, "/v1/model")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/model = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow header %q, want POST", allow)
	}
}

func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 256 })
	big := `{"net":"` + strings.Repeat("x", 1024) + `"}`
	resp, b := post(t, ts, "/v1/model", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d (%s), want 413", resp.StatusCode, b)
	}
}

// TestDeadline proves client deadlines are enforced: a 40ms injected delay
// against a 10ms deadline must answer 504 and bump the timeout counter —
// without killing the worker slot for later requests.
func TestDeadline(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, DelayProb: 1, Delay: 40 * time.Millisecond})
	})
	resp, b := post(t, ts, "/v1/model", `{"net":"AlexNet","scale":32,"deadline_ms":10}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline request = %d (%s), want 504", resp.StatusCode, b)
	}
	if got := s.timeouts.Load(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
	// The slot must have been released: a generous-deadline request works.
	resp, b = post(t, ts, "/v1/model", `{"net":"AlexNet","scale":32,"deadline_ms":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request = %d (%s), want 200", resp.StatusCode, b)
	}
}

// TestMetricsEndpoint checks the scrape contract the CI serve job relies
// on: per-endpoint counters, latency histograms with quantiles, gauges.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if resp, b := post(t, ts, "/v1/model", `{"net":"AlexNet","scale":32}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("model request = %d: %s", resp.StatusCode, b)
	}
	resp, b := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	var m MetricsResponse
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("bad metrics JSON: %v", err)
	}
	if m.Draining || m.BreakerOpen {
		t.Fatalf("fresh server reports draining=%v breakerOpen=%v", m.Draining, m.BreakerOpen)
	}
	c := m.Snapshot.Counters
	if c["server.model.requests"] != 1 || c["server.model.ok"] != 1 || c["server.model.errors"] != 0 {
		t.Fatalf("model counters wrong: %v", c)
	}
	h, ok := m.Snapshot.Histograms["server.model.latency_ns"]
	if !ok || h.Count != 1 || h.P50 <= 0 || h.P99 < h.P50 {
		t.Fatalf("latency histogram wrong: %+v (ok=%v)", h, ok)
	}
	if _, ok := m.Snapshot.Histograms["server.queue_depth"]; !ok {
		t.Fatal("queue-depth gauge histogram missing")
	}
}
