package server

// This file holds /v1/sim request coalescing: compatible simulation
// requests arriving within a short window are grouped into one shared
// batch that holds a single admission slot and runs as one multi-cell
// runner.MapCfg sweep. Identical requests inside a batch share one cell
// (in-batch dedup), so a hot configuration is simulated once no matter how
// many clients ask for it in the same window.
//
// Results fan out per cell the moment that cell finishes — each waiter
// blocks on its own buffered channel with its own deadline — so one slow
// or panicking batch member cannot stall the answers of the rest. Panics
// stay isolated exactly as on the single-request path: the batch runs with
// KeepGoing, a failed cell 500s only its own waiters.

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"

	"ristretto/internal/runner"
	"ristretto/internal/telemetry"
)

// simOutcome is what a batch delivers to one waiter: exactly one of resp
// (a per-waiter clone, safe to stamp) or aerr is set.
type simOutcome struct {
	resp *SimResponse
	aerr *apiError
}

// simWaiter is one HTTP request waiting on a batched cell.
type simWaiter struct {
	ch chan simOutcome // buffered(1); the batch never blocks on delivery
}

// simCell is one distinct simulation inside a batch: the canonical key,
// the validated request, the most privileged class among its waiters
// (interactive wins — dedup must never demote a waiter's QoS), and the
// waiters to fan the result out to.
type simCell struct {
	key     string
	req     *SimRequest
	class   priorityClass
	waiters []*simWaiter
	// deadlines collects every waiter's requested deadline_ms (0 = server
	// default). The batch runs at the maximum so a tight-deadline waiter
	// never clamps its batchmates' work — it just stops waiting early.
	deadlines []int64
	seq       int64 // fault-injection cell number (arrival order)
	delivered bool  // set by deliver; reads are ordered by MapCfg's join
}

// deliver fans an outcome out to every waiter, cloning the response per
// waiter so each handler can stamp its own envelope fields. It is
// idempotent: a cell that already answered (inside its MapCfg cell) is not
// answered again by the post-sweep error pass, so the buffered(1) waiter
// channels never block.
func (c *simCell) deliver(resp *SimResponse, aerr *apiError) {
	if c.delivered {
		return
	}
	c.delivered = true
	for _, w := range c.waiters {
		out := simOutcome{aerr: aerr}
		if resp != nil {
			cp := *resp
			out.resp = &cp
		}
		w.ch <- out
	}
}

// simBatch is one forming (then executing) batch.
type simBatch struct {
	cells []*simCell
	byKey map[string]*simCell
	timer *time.Timer
	fired bool // guarded by the batcher's mu
}

// batcher collects sim requests into batches. A submit either joins the
// forming batch (same key → shared cell; new key → new cell) or, when the
// batch is full, fires it early and starts the next one. The window timer
// fires a batch that fills slowly.
type batcher struct {
	mu       sync.Mutex
	window   time.Duration
	maxCells int
	pending  *simBatch
	run      func(*simBatch) // server execution hook

	batches   *telemetry.Counter
	coalesced *telemetry.Counter
	dedup     *telemetry.Counter
	cellsHist *telemetry.Histogram
}

// newBatcher builds a batcher firing batches through run.
func newBatcher(window time.Duration, maxCells int, run func(*simBatch), r *telemetry.Registry) *batcher {
	return &batcher{
		window:    window,
		maxCells:  maxCells,
		run:       run,
		batches:   r.Counter("server.batch.batches"),
		coalesced: r.Counter("server.batch.coalesced"),
		dedup:     r.Counter("server.batch.dedup"),
		cellsHist: r.Histogram("server.batch.cells"),
	}
}

// submit enqueues one request and returns the waiter its result arrives
// on. seq is the request's fault-injection number.
func (b *batcher) submit(key string, req *SimRequest, class priorityClass, seq int64) *simWaiter {
	w := &simWaiter{ch: make(chan simOutcome, 1)}
	b.mu.Lock()
	if b.pending == nil {
		b.pending = &simBatch{byKey: map[string]*simCell{}}
		batch := b.pending
		batch.timer = time.AfterFunc(b.window, func() { b.fire(batch) })
	} else if cell, ok := b.pending.byKey[key]; ok {
		// Identical request already in the batch: share its cell. Joining
		// promotes, never demotes — the cell takes the most privileged
		// class and the longest deadline among its waiters.
		cell.waiters = append(cell.waiters, w)
		cell.deadlines = append(cell.deadlines, req.DeadlineMS)
		if class == classInteractive {
			cell.class = classInteractive
		}
		b.dedup.Inc()
		b.coalesced.Inc()
		b.mu.Unlock()
		return w
	} else {
		b.coalesced.Inc()
	}
	batch := b.pending
	cell := &simCell{key: key, req: req, class: class, waiters: []*simWaiter{w},
		deadlines: []int64{req.DeadlineMS}, seq: seq}
	batch.cells = append(batch.cells, cell)
	batch.byKey[key] = cell
	if len(batch.cells) >= b.maxCells {
		batch.timer.Stop()
		b.pending = nil
		b.mu.Unlock()
		go b.fire(batch)
		return w
	}
	b.mu.Unlock()
	return w
}

// fire detaches the batch (if still pending) and executes it exactly once.
// Both the window timer and an early full-batch submit can call fire; the
// fired flag makes the race benign.
func (b *batcher) fire(batch *simBatch) {
	b.mu.Lock()
	if batch.fired {
		b.mu.Unlock()
		return
	}
	batch.fired = true
	if b.pending == batch {
		b.pending = nil
	}
	b.mu.Unlock()
	b.batches.Inc()
	b.cellsHist.Observe(int64(len(batch.cells)))
	b.run(batch)
}

// runBatch executes one fired batch inside the robustness envelope: one
// admission slot (at the most privileged class present), breaker
// observation, then a KeepGoing MapCfg sweep over the cells. Each cell
// decides its own degradation rung from its class, and delivers to its
// waiters the moment it finishes.
func (s *Server) runBatch(batch *simBatch) {
	class := classBatch
	var maxDeadline time.Duration
	for _, c := range batch.cells {
		if c.class == classInteractive {
			class = classInteractive
		}
		for _, dl := range c.deadlines {
			if d := s.resolveDeadline(dl); d > maxDeadline {
				maxDeadline = d
			}
		}
	}
	// The batch context is detached from any single client: one waiter
	// disconnecting must not cancel its batchmates' work.
	ctx, cancel := context.WithTimeout(context.Background(), maxDeadline)
	defer cancel()

	release, wait, err := s.adm.admit(ctx, class)
	s.queueDepth.Observe(s.adm.depth())
	if err != nil {
		aerr := &apiError{Status: http.StatusServiceUnavailable, Msg: "request cancelled while queued", RetryAfter: 1}
		if errors.Is(err, errShed) {
			s.shed.Inc()
			aerr = &apiError{Status: http.StatusTooManyRequests, Msg: "overloaded: queue full", RetryAfter: 1}
			for _, c := range batch.cells {
				s.class[c.class].shed.Add(int64(len(c.waiters)))
			}
		}
		for _, c := range batch.cells {
			c.deliver(nil, aerr)
		}
		return
	}
	defer release()
	s.queueWait.Observe(wait.Nanoseconds())
	s.brk.observe(wait)

	cfg := runner.Cfg{Timeout: maxDeadline, KeepGoing: true}
	if s.fault != nil {
		cells := batch.cells
		cfg.Fault = func(cell, attempt int) error { return s.fault(int(cells[cell].seq), attempt) }
	}
	workers := len(batch.cells)
	if workers > s.cfg.MaxConcurrent {
		workers = s.cfg.MaxConcurrent
	}
	shared := len(batch.cells) > 1
	_, rerr := runner.MapCfg(ctx, runner.New(workers), cfg, len(batch.cells), func(i int) (struct{}, error) {
		cell := batch.cells[i]
		var resp *SimResponse
		var err error
		if s.brk.degrade(cell.class) {
			s.degraded.Inc()
			s.class[cell.class].degraded.Inc()
			resp, err = s.runSimAnalytic(ctx, cell.req)
		} else {
			resp, err = s.runSimCore(ctx, cell.req)
		}
		if err != nil {
			return struct{}{}, err
		}
		resp.Batched = shared || len(cell.waiters) > 1
		cell.deliver(resp, nil)
		return struct{}{}, nil
	})
	// Failed cells (panics, timeouts, injected faults) never delivered;
	// answer their waiters with the classified error. Panic isolation is
	// per cell: the rest of the batch already delivered normally.
	for _, ce := range runner.AsCellErrors(rerr) {
		batch.cells[ce.Cell].deliver(nil, s.classify(ce))
	}
	if rerr != nil && runner.AsCellErrors(rerr) == nil {
		// Whole-batch failure (context expiry before any cell ran).
		for _, c := range batch.cells {
			c.deliver(nil, s.classify(rerr))
		}
	}
}

// awaitBatched blocks one sim handler on its batched cell's outcome,
// enforcing the waiter's own deadline: a slow batchmate cannot stall this
// response past the deadline this request asked for.
func (s *Server) awaitBatched(w http.ResponseWriter, r *http.Request, tc tenantCtx, deadlineMS int64, start time.Time, sw *simWaiter) {
	em := s.ep["sim"]
	deadline := time.NewTimer(s.resolveDeadline(deadlineMS))
	defer deadline.Stop()
	select {
	case out := <-sw.ch:
		if out.aerr != nil {
			s.fail(w, "sim", out.aerr)
			return
		}
		em.ok.Inc()
		s.class[tc.class].ok.Inc()
		elapsed := time.Since(start)
		em.latency.Observe(elapsed.Nanoseconds())
		out.resp.setElapsed(float64(elapsed.Nanoseconds()) / 1e6)
		writeJSON(w, http.StatusOK, out.resp)
	case <-deadline.C:
		s.timeouts.Inc()
		s.fail(w, "sim", &apiError{Status: http.StatusGatewayTimeout, Msg: "deadline exceeded"})
	case <-r.Context().Done():
		s.fail(w, "sim", &apiError{Status: http.StatusServiceUnavailable, Msg: "client went away", RetryAfter: 1})
	}
}

// resolveDeadline maps a request's deadline_ms to the effective wall-clock
// bound: the server default when unset, capped at MaxDeadline.
func (s *Server) resolveDeadline(deadlineMS int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if deadlineMS > 0 {
		d = time.Duration(deadlineMS) * time.Millisecond
		if d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
	}
	return d
}
