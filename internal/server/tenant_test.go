package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ristretto/internal/faultinject"
)

// TestQuotaDenies proves per-tenant token buckets: a tenant that burns its
// burst gets 429s naming its quota, while another tenant's bucket is
// untouched.
func TestQuotaDenies(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.TenantRate = 0.0001 // effectively no refill within the test
		c.TenantBurst = 2
	})

	body := `{"net":"AlexNet","precision":"4b","scale":4,"seed":1}`
	var ok, denied int
	for i := 0; i < 5; i++ {
		resp, b := postH(t, ts, "/v1/model", body, map[string]string{"X-Tenant": "alice"})
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			denied++
			var ae struct {
				Quota string `json:"quota"`
			}
			if err := json.Unmarshal(b, &ae); err != nil || ae.Quota != "alice" {
				t.Fatalf("quota denial must name the tenant, got: %s", b)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("quota denial without Retry-After")
			}
		default:
			t.Fatalf("request %d = %d: %s", i, resp.StatusCode, b)
		}
	}
	if ok != 2 || denied != 3 {
		t.Fatalf("alice: ok=%d denied=%d, want 2 ok (burst) and 3 denied", ok, denied)
	}

	// A different tenant has its own bucket.
	resp, b := postH(t, ts, "/v1/model", body, map[string]string{"X-Tenant": "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob's first request = %d: %s (buckets must be per-tenant)", resp.StatusCode, b)
	}
	if got := s.quotaDenied.Load(); got != 3 {
		t.Fatalf("quota denied counter = %d, want 3", got)
	}
}

// TestQuotaOverflowBucket proves the tenant table is bounded: with
// MaxTenants 1, a second tenant shares the overflow bucket instead of
// growing the map.
func TestQuotaOverflowBucket(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.TenantRate = 0.0001
		c.TenantBurst = 1
		c.MaxTenants = 1
	})
	body := `{"net":"AlexNet","precision":"4b","scale":4,"seed":1}`
	for _, tenant := range []string{"a", "b", "c"} {
		postH(t, ts, "/v1/model", body, map[string]string{"X-Tenant": tenant})
	}
	// Tenant "a" owns the single tracked bucket; "b" and "c" share the one
	// overflow bucket, so the table never exceeds MaxTenants + 1.
	if n := s.quota.tracked(); n > 2 {
		t.Fatalf("quota table tracks %d buckets, want <= 2 (MaxTenants + overflow)", n)
	}
}

// TestPriorityHeaderValidation proves the header contract: unknown
// priorities are 400s, valid ones are accepted and counted per class.
func TestPriorityHeaderValidation(t *testing.T) {
	s, ts := newTestServer(t, nil)
	body := `{"net":"AlexNet","precision":"4b","scale":4,"seed":1}`

	resp, b := postH(t, ts, "/v1/model", body, map[string]string{"X-Priority": "urgent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority = %d: %s, want 400", resp.StatusCode, b)
	}

	for _, pri := range []string{"interactive", "batch", "", "Batch"} {
		h := map[string]string{}
		if pri != "" {
			h["X-Priority"] = pri
		}
		if resp, b := postH(t, ts, "/v1/model", body, h); resp.StatusCode != http.StatusOK {
			t.Fatalf("priority %q = %d: %s, want 200", pri, resp.StatusCode, b)
		}
	}
	snap := s.reg.Snapshot()
	if n := snap.Counters["server.class.batch.requests"]; n != 2 {
		t.Fatalf("batch class requests = %d, want 2 (batch + Batch)", n)
	}
	if n := snap.Counters["server.class.interactive.requests"]; n < 2 {
		t.Fatalf("interactive class requests = %d, want >= 2 (explicit + default)", n)
	}
}

// TestBatchShedsBeforeInteractive proves the QoS ordering under queue
// pressure: with one worker, queue 4 and a batch share of 1, a saturating
// mixed burst sheds only batch-class traffic — every interactive request
// is served.
func TestBatchShedsBeforeInteractive(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 4
		c.BatchQueueShare = 1
		c.CacheEntries = -1 // identical bodies must each hit admission
		c.BatchWindow = -1
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, DelayProb: 1, Delay: 150 * time.Millisecond})
	})

	body := `{"net":"AlexNet","precision":"4b","scale":4,"seed":1}`

	// Pin the single worker slot so the burst below contends on the queue.
	fillerDone := make(chan struct{})
	go func() {
		defer close(fillerDone)
		postH(t, ts, "/v1/model", body, nil)
	}()
	time.Sleep(30 * time.Millisecond)

	// 3 batch + 3 interactive arrive together. The queue holds 4: batch may
	// take 1 place (its share), interactive the rest — so exactly two batch
	// requests shed and nothing else does, regardless of arrival order.
	type result struct {
		class  string
		status int
	}
	results := make(chan result, 6)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		for _, class := range []string{"batch", "interactive"} {
			wg.Add(1)
			go func(class string) {
				defer wg.Done()
				resp, _ := postH(t, ts, "/v1/model", body, map[string]string{"X-Priority": class})
				results <- result{class, resp.StatusCode}
			}(class)
		}
	}
	wg.Wait()
	close(results)
	<-fillerDone

	counts := map[result]int{}
	for r := range results {
		counts[r]++
	}
	if n := counts[result{"interactive", http.StatusOK}]; n != 3 {
		t.Fatalf("interactive 200s = %d, want 3 (interactive never sheds before batch): %v", n, counts)
	}
	if n := counts[result{"batch", http.StatusTooManyRequests}]; n != 2 {
		t.Fatalf("batch 429s = %d, want 2 (share is 1 queue place): %v", n, counts)
	}
	if n := counts[result{"batch", http.StatusOK}]; n != 1 {
		t.Fatalf("batch 200s = %d, want 1: %v", n, counts)
	}
	snap := s.reg.Snapshot()
	if n := snap.Counters["server.class.batch.shed"]; n != 2 {
		t.Fatalf("batch shed counter = %d, want 2", n)
	}
	if n := snap.Counters["server.class.interactive.shed"]; n != 0 {
		t.Fatalf("interactive shed counter = %d, want 0", n)
	}
}

// TestClassDegradeOrdering proves the two-level breaker: a soft-open
// breaker degrades batch-class sims to the analytic model while
// interactive sims still get the cycle simulator; only a hard-open breaker
// degrades interactive too.
func TestClassDegradeOrdering(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 10 * time.Millisecond
		c.BreakerHardFactor = 1000
		c.BreakerCooldown = 10 * time.Second
		c.BatchWindow = -1 // direct path: per-request degradation decisions
	})

	simBody := `{"net":"AlexNet","layer":"conv1","precision":"4b","scale":32,"seed":1}`
	degraded := func(class string) bool {
		t.Helper()
		resp, b := postH(t, ts, "/v1/sim", simBody, map[string]string{"X-Priority": class})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sim (%s) = %d: %s", class, resp.StatusCode, b)
		}
		return bytes.Contains(b, []byte(`"degraded":true`))
	}

	if degraded("batch") || degraded("interactive") {
		t.Fatal("closed breaker degraded a request")
	}

	s.brk.observe(20 * time.Millisecond) // soft level only
	if !s.brk.open() || s.brk.hardOpen() {
		t.Fatalf("observe(2x threshold): soft=%v hard=%v, want soft only", s.brk.open(), s.brk.hardOpen())
	}
	if !degraded("batch") {
		t.Fatal("soft-open breaker did not degrade batch-class sim")
	}
	if degraded("interactive") {
		t.Fatal("soft-open breaker degraded interactive sim (must hold out until hard level)")
	}

	s.brk.observe(10 * 1000 * time.Millisecond) // hard level
	if !s.brk.hardOpen() {
		t.Fatal("observe(hardFactor x threshold) did not hard-open the breaker")
	}
	if !degraded("interactive") {
		t.Fatal("hard-open breaker did not degrade interactive sim")
	}
	if n := s.brk.HardTrips(); n != 1 {
		t.Fatalf("hard trips = %d, want 1", n)
	}
}

// TestTenantHeaderLimit proves oversized tenant names are rejected rather
// than stored.
func TestTenantHeaderLimit(t *testing.T) {
	_, ts := newTestServer(t, nil)
	long := strings.Repeat("x", 200)
	resp, b := postH(t, ts, "/v1/model", `{"net":"AlexNet","precision":"4b","scale":4,"seed":1}`,
		map[string]string{"X-Tenant": long})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized tenant = %d: %s, want 400", resp.StatusCode, b)
	}
}
