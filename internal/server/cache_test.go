package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ristretto/internal/faultinject"
	"ristretto/internal/telemetry"
)

// stripVolatile removes the two documented volatile envelope fields
// (cached, elapsed_ms) from a JSON response and re-marshals it with sorted
// keys, so memoized and cold payloads can be compared byte for byte.
func stripVolatile(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal response: %v\n%s", err, body)
	}
	delete(m, "cached")
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m) // map keys marshal sorted
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMemoBitExact proves the memoization contract: a cache hit is
// byte-identical to the cold computation modulo the volatile envelope
// fields, and is flagged cached=true.
func TestMemoBitExact(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct{ path, body string }{
		{"/v1/model", `{"net":"AlexNet","precision":"8b","scale":32,"seed":3}`},
		{"/v1/quant", `{"bits":[8,4],"n":10000,"seed":7}`},
	} {
		resp1, cold := post(t, ts, tc.path, tc.body)
		if resp1.StatusCode != http.StatusOK {
			t.Fatalf("%s cold = %d: %s", tc.path, resp1.StatusCode, cold)
		}
		if bytes.Contains(cold, []byte(`"cached":true`)) {
			t.Fatalf("%s first response flagged cached: %s", tc.path, cold)
		}
		resp2, hot := post(t, ts, tc.path, tc.body)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("%s hot = %d: %s", tc.path, resp2.StatusCode, hot)
		}
		if !bytes.Contains(hot, []byte(`"cached":true`)) {
			t.Fatalf("%s second response not flagged cached: %s", tc.path, hot)
		}
		if c, h := stripVolatile(t, cold), stripVolatile(t, hot); !bytes.Equal(c, h) {
			t.Fatalf("%s memoized payload differs from cold:\ncold: %s\nhot:  %s", tc.path, c, h)
		}
	}
}

// TestMemoSingleflightDedup proves a thundering herd of one configuration
// costs one computation: with the leader's compute pinned slow, N identical
// concurrent requests produce exactly one miss, the rest hits or in-flight
// dedups, and every body agrees.
func TestMemoSingleflightDedup(t *testing.T) {
	var reg *telemetry.Registry
	_, ts := newTestServer(t, func(c *Config) {
		reg = c.Registry
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, DelayProb: 1, Delay: 50 * time.Millisecond})
	})

	const n = 16
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/model", "application/json",
				strings.NewReader(`{"net":"AlexNet","precision":"4b","scale":4,"seed":9}`))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			buf := new(bytes.Buffer)
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()

	want := stripVolatile(t, bodies[0])
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, statuses[i], bodies[i])
		}
		if got := stripVolatile(t, bodies[i]); !bytes.Equal(got, want) {
			t.Fatalf("request %d payload differs:\n%s\nvs\n%s", i, got, want)
		}
	}
	snap := reg.Snapshot()
	misses := snap.Counters["server.cache.misses"]
	hits := snap.Counters["server.cache.hits"]
	dedup := snap.Counters["server.cache.inflight_dedup"]
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (one leader computes)", misses)
	}
	if hits+dedup != n-1 {
		t.Fatalf("hits %d + dedup %d = %d, want %d", hits, dedup, hits+dedup, n-1)
	}
}

// TestMemoLRUEviction proves the cache is bounded: with capacity 2, a
// third key evicts the oldest and re-requesting it is a fresh miss.
func TestMemoLRUEviction(t *testing.T) {
	var reg *telemetry.Registry
	s, ts := newTestServer(t, func(c *Config) {
		reg = c.Registry
		c.CacheEntries = 2
	})

	body := func(seed int) string {
		return `{"net":"AlexNet","precision":"4b","scale":4,"seed":` + string(rune('0'+seed)) + `}`
	}
	for _, seed := range []int{1, 2, 3, 1} { // 3 evicts 1; 1 again misses
		resp, b := post(t, ts, "/v1/model", body(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d = %d: %s", seed, resp.StatusCode, b)
		}
	}
	snap := reg.Snapshot()
	if misses := snap.Counters["server.cache.misses"]; misses != 4 {
		t.Fatalf("misses = %d, want 4 (evicted key recomputes)", misses)
	}
	if hits := snap.Counters["server.cache.hits"]; hits != 0 {
		t.Fatalf("hits = %d, want 0", hits)
	}
	if ev := snap.Counters["server.cache.evictions"]; ev < 1 {
		t.Fatalf("evictions = %d, want >= 1", ev)
	}
	if n := s.memo.len(); n > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", n)
	}
}

// TestMemoErrorsNotCached proves a failed fill is not stored: each request
// after a failure elects a new leader and recomputes.
func TestMemoErrorsNotCached(t *testing.T) {
	var reg *telemetry.Registry
	_, ts := newTestServer(t, func(c *Config) {
		reg = c.Registry
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, Panic: 1})
	})
	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts, "/v1/model", `{"net":"AlexNet","precision":"4b","scale":4,"seed":5}`)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d = %d, want 500 (injected panic)", i, resp.StatusCode)
		}
	}
	snap := reg.Snapshot()
	if misses := snap.Counters["server.cache.misses"]; misses != 2 {
		t.Fatalf("misses = %d, want 2 (errors never cached)", misses)
	}
}

// TestMemoDisabled proves CacheEntries < 0 switches memoization off: the
// second identical request recomputes and is never flagged cached.
func TestMemoDisabled(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.CacheEntries = -1 })
	if s.memo != nil {
		t.Fatal("memo cache built despite CacheEntries < 0")
	}
	for i := 0; i < 2; i++ {
		resp, b := post(t, ts, "/v1/model", `{"net":"AlexNet","precision":"4b","scale":4,"seed":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, resp.StatusCode, b)
		}
		if bytes.Contains(b, []byte(`"cached":true`)) {
			t.Fatalf("request %d flagged cached with cache disabled: %s", i, b)
		}
	}
}

// postH is post with extra headers.
func postH(t *testing.T, ts *httptest.Server, path, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}
