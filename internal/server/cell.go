package server

// /v1/cell is the fleet worker surface: the distributed-sweep coordinator
// (internal/fleet) posts one sweep cell at a time, and the worker answers
// with the cell's journal payload — the exact JSON a checkpointed serial
// run records for that key, so merged fleet output is byte-identical to a
// local run. Failures cross the wire as runner.WireCellError inside the
// error body, carrying the replay seed and panic evidence the coordinator
// needs to reproduce the failure locally. An optional content-addressed
// cellcache (Config.CellCache) fronts the endpoint so repeated or
// concurrent requests for one fingerprint compute once.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"ristretto/internal/experiments"
	"ristretto/internal/model"
	"ristretto/internal/workload"
)

// CellRequest asks the worker to execute one sweep cell of the experiment
// suite under a workload configuration. Identical requests are pure
// functions: the response payload is bit-identical across processes and
// machines, which is what makes the result cacheable by fingerprint.
type CellRequest struct {
	Seed       int64    `json:"seed"`
	Scale      int      `json:"scale"`
	Nets       []string `json:"nets,omitempty"` // nil = full benchmark
	Cell       string   `json:"cell"`
	DeadlineMS int64    `json:"deadline_ms"`
}

func (r *CellRequest) validate(cfg *Config) *apiError {
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scale == 0 {
		r.Scale = cfg.DefaultScale
	}
	if r.Scale < 1 || r.Scale > 1024 {
		return badRequest("invalid scale %d (allowed: 1..1024)", r.Scale)
	}
	if r.Cell == "" {
		return badRequest("missing cell (allowed: %v)", experiments.CellKeys())
	}
	known := false
	for _, k := range experiments.CellKeys() {
		if k == r.Cell {
			known = true
			break
		}
	}
	if !known {
		return badRequest("unknown cell %q (allowed: %v)", r.Cell, experiments.CellKeys())
	}
	for _, n := range r.Nets {
		if _, err := model.ByName(n); err != nil {
			return badRequest("%v", err)
		}
	}
	return nil
}

// spec returns the cell identity this request computes — the fingerprint
// the cache stores the payload under.
func (r *CellRequest) spec() experiments.CellSpec {
	return experiments.CellSpec{Seed: r.Seed, Scale: r.Scale, Nets: r.Nets, Cell: r.Cell}
}

// CellResponse answers /v1/cell with the cell's journal payload. Payload
// bytes are the cache/merge currency: the coordinator never re-encodes
// them, so what the worker computed is what the manifest decodes.
// PayloadSHA256 is the end-to-end integrity digest
// (experiments.CellPayloadDigest over the fingerprint and the payload
// bytes): the coordinator recomputes it before the payload may enter the
// merge or a cache, so a response corrupted in flight — or a worker whose
// stamped digest does not match its own payload — is quarantined instead
// of silently merged.
type CellResponse struct {
	Cell          string          `json:"cell"`
	Fingerprint   string          `json:"fingerprint"`
	Payload       json.RawMessage `json:"payload"`
	PayloadSHA256 string          `json:"payload_sha256"`
	Cached        bool            `json:"cached,omitempty"` // served from the cell cache
	ElapsedMS     float64         `json:"elapsed_ms"`
}

func (r *CellResponse) setElapsed(ms float64) { r.ElapsedMS = ms }

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	var req CellRequest
	if !s.decode(w, r, "cell", &req) {
		return
	}
	if aerr := req.validate(&s.cfg); aerr != nil {
		s.fail(w, "cell", aerr)
		return
	}
	tc, ok := s.admitQoS(w, r, "cell")
	if !ok {
		return
	}
	start := time.Now()
	fp := req.spec().Fingerprint()
	// The outer compute envelope derives the same replay seed AllChecked
	// would for this cell, so even a fault injected before the experiment
	// code runs (the envelope's own hook) reports a seed that replays the
	// right cell locally.
	seedFn := func(int) int64 { return workload.DeriveSeed(req.Seed, "job", req.Cell) }
	run := func() (json.RawMessage, error) {
		res, aerr := s.compute(r, tc, req.DeadlineMS, seedFn, func(ctx context.Context) (any, error) {
			return s.runCell(ctx, &req)
		})
		if aerr != nil {
			if aerr.CellError != nil {
				aerr.CellError.Key = req.Cell
			}
			return nil, aerr
		}
		return res.(json.RawMessage), nil
	}

	var payload json.RawMessage
	var hit bool
	var err error
	if s.cells != nil {
		// Cache hits skip admission entirely (like memo hits); misses
		// singleflight so concurrent identical cells elect one leader, who
		// computes through the full envelope. Errors are never cached.
		var pb []byte
		pb, hit, err = s.cells.Do(fp, func() ([]byte, error) { return run() })
		payload = pb
	} else {
		payload, err = run()
	}
	if err != nil {
		var aerr *apiError
		if !errors.As(err, &aerr) {
			aerr = &apiError{Status: http.StatusInternalServerError, Msg: err.Error()}
		}
		s.fail(w, "cell", aerr)
		return
	}
	s.finish(w, "cell", tc, start, &CellResponse{
		Cell: req.Cell, Fingerprint: fp, Payload: payload, Cached: hit,
		PayloadSHA256: experiments.CellPayloadDigest(fp, payload),
	})
}

// runCell executes the cell exactly as a checkpointed serial sweep would:
// same Bench configuration, same per-cell seed derivation, same journal
// payload encoding. The request context cancels in-flight work.
func (s *Server) runCell(ctx context.Context, req *CellRequest) (any, error) {
	b := experiments.NewQuickBench(req.Seed, req.Scale)
	b.Nets = req.Nets
	b.Ctx = ctx
	return b.RunCellChecked(req.Cell, experiments.RunOptions{})
}
