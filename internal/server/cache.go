package server

// This file holds the serving-scale memoization layer: a content-keyed
// LRU + singleflight cache over the pure-function endpoints (/v1/model and
// /v1/quant are deterministic functions of their canonicalized request).
// A hit bypasses the entire compute envelope — no admission slot, no
// queue, no engine — and is served in microseconds from the stored
// response; a miss elects exactly one leader to compute while concurrent
// identical requests wait on the in-flight result (inflight dedup), so a
// thundering herd of one hot configuration costs one computation.
//
// The cache stores the pristine response value (envelope fields zeroed);
// every serve path works on a shallow clone, so memoized payloads are
// byte-identical to cold-path payloads modulo the two documented volatile
// envelope fields (cached, elapsed_ms) — enforced by TestMemoBitExact.

import (
	"container/list"
	"sync"

	"ristretto/internal/telemetry"
)

// memoizable is implemented by response types the cache can store: Clone
// returns a shallow copy safe to stamp per-request envelope fields on
// without mutating the cached original. Payload fields are never mutated
// after construction, so sharing slices between clones is safe.
type memoizable interface {
	memoClone(cached bool) memoizable
}

// flight is one in-progress cache fill. Waiters block on done; after it
// closes exactly one of val/aerr is set. Errors are never cached — each
// fresh request after a failed fill elects a new leader.
type flight struct {
	done chan struct{}
	val  memoizable
	aerr *apiError
}

// memoEntry is one cached response keyed by its canonical request.
type memoEntry struct {
	key string
	val memoizable
}

// memoCache is the LRU + singleflight store. All state is guarded by mu;
// the critical sections are map/list operations only (computation happens
// outside the lock), so the lock is microseconds even under contention.
type memoCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // key → element holding *memoEntry
	flights map[string]*flight

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	dedup     *telemetry.Counter
	evictions *telemetry.Counter
	size      *telemetry.Gauge
}

// newMemoCache builds a cache bounded to capacity entries, reporting into
// the registry under the server.cache.* names.
func newMemoCache(capacity int, r *telemetry.Registry) *memoCache {
	return &memoCache{
		cap:       capacity,
		ll:        list.New(),
		entries:   map[string]*list.Element{},
		flights:   map[string]*flight{},
		hits:      r.Counter("server.cache.hits"),
		misses:    r.Counter("server.cache.misses"),
		dedup:     r.Counter("server.cache.inflight_dedup"),
		evictions: r.Counter("server.cache.evictions"),
		size:      r.Gauge("server.cache.entries"),
	}
}

// get returns the cached pristine value for key, refreshing its recency.
func (c *memoCache) get(key string) (memoizable, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*memoEntry).val, true
}

// join registers interest in a fill for key. The first caller becomes the
// leader (leader=true, counted as a miss) and must call complete; later
// callers get the same flight to wait on and are counted as inflight
// dedups. A fill racing a concurrent complete may find the value already
// cached; join re-checks so such callers are served as hits.
func (c *memoCache) join(key string) (fl *flight, val memoizable, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok { // filled between get and join
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return nil, el.Value.(*memoEntry).val, false
	}
	if fl, ok := c.flights[key]; ok {
		c.dedup.Inc()
		return fl, nil, false
	}
	fl = &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.misses.Inc()
	return fl, nil, true
}

// complete finishes a leader's fill: the result is published to waiters
// and, on success, inserted at the front of the LRU (evicting from the
// back over capacity). val must already be pristine (envelope zeroed).
func (c *memoCache) complete(key string, fl *flight, val memoizable, aerr *apiError) {
	c.mu.Lock()
	fl.val, fl.aerr = val, aerr
	delete(c.flights, key)
	if aerr == nil && val != nil {
		if el, ok := c.entries[key]; ok {
			el.Value.(*memoEntry).val = val
			c.ll.MoveToFront(el)
		} else {
			c.entries[key] = c.ll.PushFront(&memoEntry{key: key, val: val})
			for c.ll.Len() > c.cap {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.entries, oldest.Value.(*memoEntry).key)
				c.evictions.Inc()
			}
		}
		c.size.Set(int64(c.ll.Len()))
	}
	c.mu.Unlock()
	close(fl.done)
}

// len reports the current entry count.
func (c *memoCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
