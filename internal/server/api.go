package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"ristretto/internal/conformance"
	"ristretto/internal/experiments"
	"ristretto/internal/model"
	"ristretto/internal/runner"
)

// apiError is a failure with an HTTP status. Handlers and the compute
// functions return it for client-caused failures (validation, unknown
// resources); everything else maps to 500/503/504 in the execute envelope.
type apiError struct {
	Status     int                   `json:"status"`
	Msg        string                `json:"error"`
	Quota      string                `json:"quota,omitempty"` // tenant whose token bucket was empty (429s only)
	RetryAfter int                   `json:"-"`               // seconds; > 0 emits a Retry-After header
	CellError  *runner.WireCellError `json:"cell_error,omitempty"`
}

func (e *apiError) Error() string { return e.Msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: http.StatusBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// accelNames are the accelerators the /v1/model endpoint can estimate,
// matching ristretto-sim's -accel enum.
var accelNames = []string{"ristretto", "ristretto-ns", "bitfusion", "laconic", "laconic-mod", "sparten", "sparten-mp", "scnn", "snap"}

func checkEnum(field, val string, allowed []string) *apiError {
	for _, a := range allowed {
		if val == a {
			return nil
		}
	}
	return badRequest("invalid %s %q (allowed: %s)", field, val, strings.Join(allowed, ", "))
}

// ModelRequest asks the analytic model for a full-network latency/energy
// estimate — the cheap rung of the degradation ladder, also served directly.
type ModelRequest struct {
	Net        string `json:"net"`
	Precision  string `json:"precision"`
	Accel      string `json:"accel"`
	Tiles      int    `json:"tiles"`
	Mults      int    `json:"mults"`
	Gran       int    `json:"gran"`
	Balance    string `json:"balance"`
	Seed       int64  `json:"seed"`
	Scale      int    `json:"scale"`
	DeadlineMS int64  `json:"deadline_ms"`
}

func (r *ModelRequest) validate(cfg *Config) *apiError {
	if r.Net == "" {
		r.Net = "ResNet-18"
	}
	if r.Precision == "" {
		r.Precision = "4b"
	}
	if r.Accel == "" {
		r.Accel = "ristretto"
	}
	applyShapeDefaults(&r.Tiles, &r.Mults, &r.Gran, &r.Balance)
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scale == 0 {
		r.Scale = cfg.DefaultScale
	}
	if _, err := model.ByName(r.Net); err != nil {
		return badRequest("%v", err)
	}
	if err := checkEnum("precision", r.Precision, experiments.PrecisionNames); err != nil {
		return err
	}
	if err := checkEnum("accel", r.Accel, accelNames); err != nil {
		return err
	}
	return validateShape(r.Tiles, r.Mults, r.Gran, r.Balance, r.Scale)
}

// memoKey canonicalizes a validated model request into its cache identity:
// every result-affecting field (defaults already applied by validate), with
// the deadline — a pure execution bound — excluded.
func (r *ModelRequest) memoKey() string {
	c := *r
	c.DeadlineMS = 0
	b, _ := json.Marshal(c)
	return "model|" + string(b)
}

// SimRequest asks the cycle-accurate lockstep core simulator for one layer —
// the expensive rung. When the circuit breaker is open it is answered by the
// analytic model instead, flagged degraded.
type SimRequest struct {
	Net        string `json:"net"`
	Layer      string `json:"layer"`
	Precision  string `json:"precision"`
	Tiles      int    `json:"tiles"`
	Mults      int    `json:"mults"`
	Gran       int    `json:"gran"`
	Balance    string `json:"balance"`
	TileW      int    `json:"tile_w"`
	TileH      int    `json:"tile_h"`
	Seed       int64  `json:"seed"`
	Scale      int    `json:"scale"`
	DeadlineMS int64  `json:"deadline_ms"`
}

func (r *SimRequest) validate(cfg *Config) *apiError {
	if r.Net == "" {
		r.Net = "ResNet-18"
	}
	if r.Layer == "" {
		r.Layer = "conv3_2"
	}
	if r.Precision == "" {
		r.Precision = "4b"
	}
	applyShapeDefaults(&r.Tiles, &r.Mults, &r.Gran, &r.Balance)
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Scale == 0 {
		r.Scale = cfg.DefaultScale
	}
	if _, ok := precisionBits(r.Precision); !ok {
		return badRequest("invalid precision %q (allowed: 8b, 4b, 2b)", r.Precision)
	}
	n, err := model.ByName(r.Net)
	if err != nil {
		return badRequest("%v", err)
	}
	if _, err := n.Layer(r.Layer); err != nil {
		return badRequest("%v", err)
	}
	if r.TileW < 0 || r.TileW > 1024 || r.TileH < 0 || r.TileH > 1024 {
		return badRequest("invalid tile_w/tile_h %d/%d (allowed: 0..1024)", r.TileW, r.TileH)
	}
	if aerr := validateShape(r.Tiles, r.Mults, r.Gran, r.Balance, r.Scale); aerr != nil {
		return aerr
	}
	// Bound the simulated workload size so one request cannot pin a worker
	// slot for minutes: the scaled layer's operand volume is the cheap proxy.
	l := scaledLayer(r.Seed, r.Scale, n, r.Layer)
	if vol := l.Activations() + l.Weights(); vol > cfg.MaxSimValues {
		return badRequest("layer %s at scale %d has %d operand values, over the per-request cap %d; raise scale",
			r.Layer, r.Scale, vol, cfg.MaxSimValues)
	}
	return nil
}

// memoKey canonicalizes a validated sim request into its batching identity:
// requests with identical keys share one batch cell (the simulation is a
// pure function of these fields; the deadline is excluded).
func (r *SimRequest) memoKey() string {
	c := *r
	c.DeadlineMS = 0
	b, _ := json.Marshal(c)
	return "sim|" + string(b)
}

// precisionBits maps the uniform precision names to bit-widths.
func precisionBits(p string) (int, bool) {
	bits, ok := map[string]int{"8b": 8, "4b": 4, "2b": 2}[p]
	return bits, ok
}

// applyShapeDefaults fills the shared accelerator-shape defaults.
func applyShapeDefaults(tiles, mults, gran *int, balance *string) {
	if *tiles == 0 {
		*tiles = 8
	}
	if *mults == 0 {
		*mults = 32
	}
	if *gran == 0 {
		*gran = 2
	}
	if *balance == "" {
		*balance = "wa"
	}
}

func validateShape(tiles, mults, gran int, balance string, scale int) *apiError {
	if tiles < 1 || tiles > 1024 {
		return badRequest("invalid tiles %d (allowed: 1..1024)", tiles)
	}
	if mults < 1 || mults > 1024 {
		return badRequest("invalid mults %d (allowed: 1..1024)", mults)
	}
	if gran < 1 || gran > 3 {
		return badRequest("invalid gran %d (allowed: 1, 2, 3)", gran)
	}
	if err := checkEnum("balance", balance, []string{"wa", "w", "none"}); err != nil {
		return err
	}
	if scale < 1 || scale > 1024 {
		return badRequest("invalid scale %d (allowed: 1..1024)", scale)
	}
	return nil
}

// QuantRequest runs the Figure-1 style statistical quantization sweep.
type QuantRequest struct {
	Bits       []int   `json:"bits"`
	N          int     `json:"n"`
	Gran       int     `json:"gran"`
	Seed       int64   `json:"seed"`
	PruneW     float64 `json:"prune_w"`
	PruneA     float64 `json:"prune_a"`
	DeadlineMS int64   `json:"deadline_ms"`
}

func (r *QuantRequest) validate(cfg *Config) *apiError {
	if len(r.Bits) == 0 {
		r.Bits = []int{8, 6, 4, 2}
	}
	if r.N == 0 {
		r.N = 100_000
	}
	if r.Gran == 0 {
		r.Gran = 2
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if len(r.Bits) > 8 {
		return badRequest("too many bit-widths (%d, max 8)", len(r.Bits))
	}
	for _, b := range r.Bits {
		if b < 2 || b > 8 {
			return badRequest("invalid bits %d (allowed: 2..8)", b)
		}
	}
	if r.N < 1 || int64(r.N) > cfg.MaxQuantSamples {
		return badRequest("invalid n %d (allowed: 1..%d)", r.N, cfg.MaxQuantSamples)
	}
	if r.Gran < 1 || r.Gran > 3 {
		return badRequest("invalid gran %d (allowed: 1, 2, 3)", r.Gran)
	}
	if r.PruneW < 0 || r.PruneW > 1 || r.PruneA < 0 || r.PruneA > 1 {
		return badRequest("invalid prune_w/prune_a %v/%v (allowed: [0,1])", r.PruneW, r.PruneA)
	}
	return nil
}

// memoKey canonicalizes a validated quant request into its cache identity
// (deadline excluded; the sweep is a pure function of the rest).
func (r *QuantRequest) memoKey() string {
	c := *r
	c.DeadlineMS = 0
	b, _ := json.Marshal(c)
	return "quant|" + string(b)
}

// ConformanceRequest spot-checks one engine (or all) against the dense
// reference convolution over the seeded differential sweep.
type ConformanceRequest struct {
	Engine     string `json:"engine"` // "" or "all" sweeps every registered engine
	Cases      int    `json:"cases"`
	Seed       int64  `json:"seed"`
	DeadlineMS int64  `json:"deadline_ms"`
}

func (r *ConformanceRequest) validate(cfg *Config) *apiError {
	if r.Cases == 0 {
		r.Cases = 10
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Cases < 1 || r.Cases > cfg.MaxConformanceCases {
		return badRequest("invalid cases %d (allowed: 1..%d)", r.Cases, cfg.MaxConformanceCases)
	}
	if r.Engine != "" && r.Engine != "all" {
		if _, ok := conformance.ByName(r.Engine); !ok {
			return badRequest("unknown engine %q (allowed: all, %s)", r.Engine, strings.Join(conformance.Names(), ", "))
		}
	}
	return nil
}

// EnergyPJ is the energy breakdown attached to compute responses.
type EnergyPJ struct {
	ComputePJ float64 `json:"compute_pj"`
	OnChipPJ  float64 `json:"onchip_pj"`
	DRAMPJ    float64 `json:"dram_pj"`
	TotalPJ   float64 `json:"total_pj"`
}

// ModelResponse answers /v1/model.
type ModelResponse struct {
	Net       string   `json:"net"`
	Accel     string   `json:"accel"`
	Precision string   `json:"precision"`
	Layers    int      `json:"layers"`
	MACs      int64    `json:"macs"`
	Cycles    int64    `json:"cycles"`
	MS        float64  `json:"ms_at_500mhz"`
	Energy    EnergyPJ `json:"energy"`
	DRAMBytes int64    `json:"dram_bytes"`
	Engine    string   `json:"engine"` // always "analytic"
	Degraded  bool     `json:"degraded"`
	Cached    bool     `json:"cached,omitempty"` // served from the memo cache
	ElapsedMS float64  `json:"elapsed_ms"`
}

// SimResponse answers /v1/sim. Engine distinguishes the cycle-accurate
// answer ("core-sim") from a breaker-degraded analytic one ("analytic").
type SimResponse struct {
	Net         string   `json:"net"`
	Layer       string   `json:"layer"`
	Precision   string   `json:"precision"`
	Cycles      int64    `json:"cycles"`
	Utilization float64  `json:"utilization"`
	DrainWait   int64    `json:"drain_wait,omitempty"`
	LoadCycles  int64    `json:"load_cycles,omitempty"`
	Stalls      int64    `json:"stalls,omitempty"`
	Conflicts   int64    `json:"conflicts,omitempty"`
	Energy      EnergyPJ `json:"energy"`
	Engine      string   `json:"engine"`
	Degraded    bool     `json:"degraded"`
	Batched     bool     `json:"batched,omitempty"` // shared a coalesced batch or cell
	ElapsedMS   float64  `json:"elapsed_ms"`
}

// QuantStats is one operand population's sparsity measurement.
type QuantStats struct {
	ValueDensity float64 `json:"value_density"`
	AtomDensity  float64 `json:"atom_density"`
	StreamAtoms  int     `json:"stream_atoms"`
	DenseAtoms   int     `json:"dense_atoms"`
}

// QuantRow is the sweep result at one bit-width.
type QuantRow struct {
	Bits    int        `json:"bits"`
	Weights QuantStats `json:"weights"`
	Acts    QuantStats `json:"acts"`
}

// QuantResponse answers /v1/quant.
type QuantResponse struct {
	N         int        `json:"n"`
	Gran      int        `json:"gran"`
	Rows      []QuantRow `json:"rows"`
	Degraded  bool       `json:"degraded"`
	Cached    bool       `json:"cached,omitempty"` // served from the memo cache
	ElapsedMS float64    `json:"elapsed_ms"`
}

// ConformanceReport is one engine's spot-check outcome.
type ConformanceReport struct {
	Engine       string `json:"engine"`
	Analytic     bool   `json:"analytic,omitempty"`
	Cases        int    `json:"cases"`
	Failures     int    `json:"failures"`
	FirstFailure string `json:"first_failure,omitempty"`
}

// ConformanceResponse answers /v1/conformance.
type ConformanceResponse struct {
	OK        bool                `json:"ok"`
	Reports   []ConformanceReport `json:"reports"`
	Degraded  bool                `json:"degraded"`
	ElapsedMS float64             `json:"elapsed_ms"`
}

// elapsedSetter lets the execute envelope stamp the measured wall time onto
// any compute response without knowing its concrete type.
type elapsedSetter interface{ setElapsed(ms float64) }

func (r *ModelResponse) setElapsed(ms float64)       { r.ElapsedMS = ms }
func (r *SimResponse) setElapsed(ms float64)         { r.ElapsedMS = ms }
func (r *QuantResponse) setElapsed(ms float64)       { r.ElapsedMS = ms }
func (r *ConformanceResponse) setElapsed(ms float64) { r.ElapsedMS = ms }

// memoClone implements memoizable: a shallow copy with the volatile
// envelope fields (cached, elapsed_ms) reset, so the cache stores pristine
// payloads and every serve path stamps its own copy. Payload fields are
// never mutated after construction, so sharing Rows between clones is safe.
func (r *ModelResponse) memoClone(cached bool) memoizable {
	c := *r
	c.Cached, c.ElapsedMS = cached, 0
	return &c
}

// memoClone implements memoizable for quant sweeps (see ModelResponse).
func (r *QuantResponse) memoClone(cached bool) memoizable {
	c := *r
	c.Cached, c.ElapsedMS = cached, 0
	return &c
}
