package server

// This file holds admission control and the degradation circuit breaker:
// the two mechanisms that keep the daemon standing when offered load
// exceeds capacity. The admission gate bounds both concurrency (worker
// slots) and the waiting line (queue cap) so memory stays
// O(MaxConcurrent + MaxQueue) no matter how hard clients push — excess
// requests are shed synchronously with 429. The breaker watches how long
// admitted requests waited for a slot; once that queue latency crosses the
// configured threshold the expensive cycle-accurate simulations are
// answered by the analytic model instead (flagged degraded), trading
// fidelity for throughput exactly the way the paper's analytic model
// stands in for the simulators. Both mechanisms are priority-class aware
// (see tenant.go): the batch class has a bounded share of the waiting line
// and degrades at the breaker's soft level, while interactive traffic owns
// the full queue and only degrades at the hard level.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errShed is returned by admit when the waiting line is full; it maps to
// 429 + Retry-After at the HTTP layer.
var errShed = errors.New("server: queue full, request shed")

// admission is a bounded two-stage gate: at most MaxConcurrent requests
// hold a worker slot, at most MaxQueue more wait for one. Everything beyond
// that is shed immediately — never buffered. The waiting line is
// class-aware: batch-class requests may occupy at most batchShare of the
// queue places, so under mixed overload the batch class sheds first and
// interactive traffic keeps the remaining headroom to itself.
type admission struct {
	slots       chan struct{}
	maxQueue    int64
	batchShare  int64
	queued      atomic.Int64
	queuedBatch atomic.Int64
	inflight    atomic.Int64
}

func newAdmission(workers, queue, batchShare int) *admission {
	return &admission{
		slots:      make(chan struct{}, workers),
		maxQueue:   int64(queue),
		batchShare: int64(batchShare),
	}
}

// admit blocks until a worker slot frees, the queue overflows (errShed), or
// ctx is done. Batch-class requests are additionally shed once their class
// share of the queue is exhausted. On success it returns the release
// function and how long the request waited in the queue — the breaker's
// input signal.
func (a *admission) admit(ctx context.Context, class priorityClass) (release func(), wait time.Duration, err error) {
	batch := class == classBatch
	if batch && a.queuedBatch.Add(1) > a.batchShare {
		a.queuedBatch.Add(-1)
		return nil, 0, errShed
	}
	undoBatch := func() {
		if batch {
			a.queuedBatch.Add(-1)
		}
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		undoBatch()
		return nil, 0, errShed
	}
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		undoBatch()
		a.inflight.Add(1)
		return func() {
			a.inflight.Add(-1)
			<-a.slots
		}, time.Since(start), nil
	case <-ctx.Done():
		a.queued.Add(-1)
		undoBatch()
		return nil, time.Since(start), ctx.Err()
	}
}

// depth reports queued + in-flight requests: the bounded quantity the
// overload tests assert on and /metrics exposes as the queue-depth gauge.
func (a *admission) depth() int64 { return a.queued.Load() + a.inflight.Load() }

// Inflight reports requests currently holding a worker slot.
func (a *admission) Inflight() int64 { return a.inflight.Load() }

// breaker is a two-level, time-based degradation circuit breaker. A queue
// wait at or above threshold soft-opens it for cooldown; a wait at or above
// hardFactor×threshold hard-opens it too. While soft-open, batch-class sim
// requests take the analytic path; only a hard-open breaker degrades
// interactive traffic — the per-class QoS ordering (batch degrades first).
// Expiry is the half-open probe: the first slow wait after cooldown
// re-opens the matching level, a fast one leaves it closed. threshold <= 0
// disables the breaker entirely.
type breaker struct {
	threshold  time.Duration
	hardFactor int
	cooldown   time.Duration
	softUntil  atomic.Int64 // unix nanos; 0 = closed
	hardUntil  atomic.Int64
	trips      atomic.Int64
	hardTrips  atomic.Int64
}

func newBreaker(threshold time.Duration, hardFactor int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, hardFactor: hardFactor, cooldown: cooldown}
}

// openLevel extends until to now+cooldown, counting closed→open transitions
// into trips.
func openLevel(until *atomic.Int64, trips *atomic.Int64, now time.Time, cooldown time.Duration) {
	target := now.Add(cooldown).UnixNano()
	for {
		cur := until.Load()
		if target <= cur {
			return // an earlier observation already opened further
		}
		if until.CompareAndSwap(cur, target) {
			if cur < now.UnixNano() {
				trips.Add(1) // closed → open transition
			}
			return
		}
	}
}

// observe feeds one admitted request's queue wait into the breaker.
func (b *breaker) observe(wait time.Duration) {
	if b.threshold <= 0 || wait < b.threshold {
		return
	}
	now := time.Now()
	openLevel(&b.softUntil, &b.trips, now, b.cooldown)
	if wait >= b.threshold*time.Duration(b.hardFactor) {
		openLevel(&b.hardUntil, &b.hardTrips, now, b.cooldown)
	}
}

// open reports whether the breaker is at least soft-open (batch-class sim
// requests currently degrade to the analytic model).
func (b *breaker) open() bool {
	return b.threshold > 0 && time.Now().UnixNano() < b.softUntil.Load()
}

// hardOpen reports whether queue waits crossed hardFactor×threshold —
// the level at which even interactive sim requests degrade.
func (b *breaker) hardOpen() bool {
	return b.threshold > 0 && time.Now().UnixNano() < b.hardUntil.Load()
}

// degrade reports whether a sim request of the given class should be
// answered by the analytic model: batch degrades while soft-open,
// interactive only while hard-open.
func (b *breaker) degrade(class priorityClass) bool {
	if class == classBatch {
		return b.open()
	}
	return b.hardOpen()
}

// Trips reports closed→soft-open transitions, for /metrics.
func (b *breaker) Trips() int64 { return b.trips.Load() }

// HardTrips reports closed→hard-open transitions, for /metrics.
func (b *breaker) HardTrips() int64 { return b.hardTrips.Load() }
