package server

// This file holds admission control and the degradation circuit breaker:
// the two mechanisms that keep the daemon standing when offered load
// exceeds capacity. The admission gate bounds both concurrency (worker
// slots) and the waiting line (queue cap) so memory stays
// O(MaxConcurrent + MaxQueue) no matter how hard clients push — excess
// requests are shed synchronously with 429. The breaker watches how long
// admitted requests waited for a slot; once that queue latency crosses the
// configured threshold the expensive cycle-accurate simulations are
// answered by the analytic model instead (flagged degraded), trading
// fidelity for throughput exactly the way the paper's analytic model
// stands in for the simulators.

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errShed is returned by admit when the waiting line is full; it maps to
// 429 + Retry-After at the HTTP layer.
var errShed = errors.New("server: queue full, request shed")

// admission is a bounded two-stage gate: at most MaxConcurrent requests
// hold a worker slot, at most MaxQueue more wait for one. Everything beyond
// that is shed immediately — never buffered.
type admission struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inflight atomic.Int64
}

func newAdmission(workers, queue int) *admission {
	return &admission{slots: make(chan struct{}, workers), maxQueue: int64(queue)}
}

// admit blocks until a worker slot frees, the queue overflows (errShed), or
// ctx is done. On success it returns the release function and how long the
// request waited in the queue — the breaker's input signal.
func (a *admission) admit(ctx context.Context) (release func(), wait time.Duration, err error) {
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, 0, errShed
	}
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		a.inflight.Add(1)
		return func() {
			a.inflight.Add(-1)
			<-a.slots
		}, time.Since(start), nil
	case <-ctx.Done():
		a.queued.Add(-1)
		return nil, time.Since(start), ctx.Err()
	}
}

// depth reports queued + in-flight requests: the bounded quantity the
// overload tests assert on and /metrics exposes as the queue-depth gauge.
func (a *admission) depth() int64 { return a.queued.Load() + a.inflight.Load() }

// Inflight reports requests currently holding a worker slot.
func (a *admission) Inflight() int64 { return a.inflight.Load() }

// breaker is a time-based degradation circuit breaker. A queue wait at or
// above threshold opens it for cooldown; while open, sim requests take the
// analytic path. Expiry is the half-open probe: the first slow wait after
// cooldown re-opens it, a fast one leaves it closed. threshold <= 0
// disables the breaker entirely.
type breaker struct {
	threshold time.Duration
	cooldown  time.Duration
	openUntil atomic.Int64 // unix nanos; 0 = closed
	trips     atomic.Int64
}

func newBreaker(threshold, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// observe feeds one admitted request's queue wait into the breaker.
func (b *breaker) observe(wait time.Duration) {
	if b.threshold <= 0 || wait < b.threshold {
		return
	}
	now := time.Now()
	until := now.Add(b.cooldown).UnixNano()
	for {
		cur := b.openUntil.Load()
		if until <= cur {
			return // an earlier observation already opened further
		}
		if b.openUntil.CompareAndSwap(cur, until) {
			if cur < now.UnixNano() {
				b.trips.Add(1) // closed → open transition
			}
			return
		}
	}
}

// open reports whether the breaker currently routes sim requests to the
// analytic model.
func (b *breaker) open() bool {
	return b.threshold > 0 && time.Now().UnixNano() < b.openUntil.Load()
}

// Trips reports closed→open transitions, for /metrics.
func (b *breaker) Trips() int64 { return b.trips.Load() }
