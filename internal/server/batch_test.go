package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ristretto/internal/faultinject"
	"ristretto/internal/telemetry"
)

// TestBatchCoalesceIdentical proves a burst of identical /v1/sim requests
// collapses into one shared cell: one batch, one simulation, every waiter
// answered with the same flagged-batched payload.
func TestBatchCoalesceIdentical(t *testing.T) {
	var reg *telemetry.Registry
	_, ts := newTestServer(t, func(c *Config) {
		reg = c.Registry
		c.BatchWindow = 50 * time.Millisecond
	})

	const n = 8
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sim", "application/json",
				strings.NewReader(`{"net":"AlexNet","layer":"conv1","precision":"4b","scale":32,"seed":2}`))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			buf := new(bytes.Buffer)
			buf.ReadFrom(resp.Body)
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()

	var wantCycles int64 = -1
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, statuses[i], bodies[i])
		}
		var sr SimResponse
		if err := json.Unmarshal(bodies[i], &sr); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !sr.Batched {
			t.Fatalf("request %d not flagged batched: %s", i, bodies[i])
		}
		if wantCycles < 0 {
			wantCycles = sr.Cycles
		} else if sr.Cycles != wantCycles {
			t.Fatalf("request %d cycles %d != %d (shared cell must share the result)", i, sr.Cycles, wantCycles)
		}
	}
	snap := reg.Snapshot()
	if b := snap.Counters["server.batch.batches"]; b != 1 {
		t.Fatalf("batches = %d, want 1", b)
	}
	if d := snap.Counters["server.batch.dedup"]; d != n-1 {
		t.Fatalf("dedup = %d, want %d", d, n-1)
	}
}

// TestBatchDistinctKeys proves distinct simulations coalesce into one
// shared sweep (one batch, one admission) while each waiter gets its own
// configuration's result.
func TestBatchDistinctKeys(t *testing.T) {
	var reg *telemetry.Registry
	_, ts := newTestServer(t, func(c *Config) {
		reg = c.Registry
		c.BatchWindow = 50 * time.Millisecond
	})

	reqs := []string{
		`{"net":"AlexNet","layer":"conv1","precision":"4b","scale":32,"seed":2}`,
		`{"net":"AlexNet","layer":"conv2","precision":"4b","scale":32,"seed":2}`,
	}
	layers := make([]string, len(reqs))
	var wg sync.WaitGroup
	for i, body := range reqs {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var sr SimResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if !sr.Batched {
				t.Errorf("request %d not flagged batched", i)
			}
			layers[i] = sr.Layer
		}(i, body)
	}
	wg.Wait()

	if layers[0] != "conv1" || layers[1] != "conv2" {
		t.Fatalf("waiters got wrong cells: %v", layers)
	}
	snap := reg.Snapshot()
	if b := snap.Counters["server.batch.batches"]; b != 1 {
		t.Fatalf("batches = %d, want 1 (distinct keys share a sweep)", b)
	}
	if c := snap.Counters["server.batch.coalesced"]; c != 1 {
		t.Fatalf("coalesced = %d, want 1", c)
	}
}

// TestBatchWaiterDeadline proves deadline fan-out: two waiters share one
// slow cell, and the one with a 1ms deadline gets its 504 on time while
// its batchmate with a generous deadline gets the result.
func TestBatchWaiterDeadline(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.BatchWindow = 50 * time.Millisecond
		c.Fault = faultinject.New(faultinject.Spec{Seed: 1, DelayProb: 1, Delay: 200 * time.Millisecond})
	})

	type result struct {
		status  int
		elapsed time.Duration
	}
	results := make([]result, 2)
	deadlines := []string{"1", "5000"}
	var wg sync.WaitGroup
	for i, dl := range deadlines {
		wg.Add(1)
		go func(i int, dl string) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(ts.URL+"/v1/sim", "application/json",
				strings.NewReader(`{"net":"AlexNet","layer":"conv1","precision":"4b","scale":32,"seed":2,"deadline_ms":`+dl+`}`))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			resp.Body.Close()
			results[i] = result{resp.StatusCode, time.Since(start)}
		}(i, dl)
	}
	wg.Wait()

	if results[0].status != http.StatusGatewayTimeout {
		t.Fatalf("tight-deadline waiter = %d, want 504", results[0].status)
	}
	if results[0].elapsed > 150*time.Millisecond {
		t.Fatalf("tight-deadline waiter stalled %v behind its slow batchmate", results[0].elapsed)
	}
	if results[1].status != http.StatusOK {
		t.Fatalf("patient waiter = %d, want 200", results[1].status)
	}
}

// TestBatchDisabled proves BatchWindow < 0 restores the direct sim path:
// responses are never flagged batched.
func TestBatchDisabled(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.BatchWindow = -1 })
	if s.batch != nil {
		t.Fatal("batcher built despite BatchWindow < 0")
	}
	resp, b := post(t, ts, "/v1/sim", `{"net":"AlexNet","layer":"conv1","precision":"4b","scale":32,"seed":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim = %d: %s", resp.StatusCode, b)
	}
	if bytes.Contains(b, []byte(`"batched":true`)) {
		t.Fatalf("response flagged batched with batching disabled: %s", b)
	}
}

// TestBatchPanicIsolation proves a panicking cell 500s only its own
// waiters: its batchmate's distinct simulation still answers 200.
func TestBatchPanicIsolation(t *testing.T) {
	// Cell numbering is arrival order; seed 2 at p=0.5 panics cell 1 and
	// spares cell 2 (the schedule is deterministic in (seed, cell)).
	_, ts := newTestServer(t, func(c *Config) {
		c.BatchWindow = 50 * time.Millisecond
		c.Fault = faultinject.New(faultinject.Spec{Seed: 2, Panic: 0.5})
	})

	// Sequential submits inside one window give deterministic seq numbers.
	type out struct {
		status int
		body   []byte
	}
	results := make(chan out, 2)
	var wg sync.WaitGroup
	for _, body := range []string{
		`{"net":"AlexNet","layer":"conv1","precision":"4b","scale":32,"seed":2}`,
		`{"net":"AlexNet","layer":"conv2","precision":"4b","scale":32,"seed":2}`,
	} {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request: %v", err)
				return
			}
			defer resp.Body.Close()
			buf := new(bytes.Buffer)
			buf.ReadFrom(resp.Body)
			results <- out{resp.StatusCode, buf.Bytes()}
		}(body)
		time.Sleep(10 * time.Millisecond) // deterministic arrival order
	}
	wg.Wait()
	close(results)

	var codes []int
	for r := range results {
		codes = append(codes, r.status)
	}
	var okN, failN int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			okN++
		case http.StatusInternalServerError:
			failN++
		default:
			t.Fatalf("unexpected status %d (want 200 or 500), all: %v", c, codes)
		}
	}
	if okN != 1 || failN != 1 {
		t.Fatalf("statuses %v: want exactly one 200 and one isolated 500", codes)
	}
}
