package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"

	"ristretto/internal/cellcache"
	"ristretto/internal/experiments"
	"ristretto/internal/faultinject"
	"ristretto/internal/workload"
)

// TestCellEndpointMatchesLocalRun is the wire half of the distributed
// determinism guarantee: the payload a worker answers for a cell must be
// byte-identical to what a local checkpointed run computes for the same
// workload configuration.
func TestCellEndpointMatchesLocalRun(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, cell := range []string{"table4", "figure1"} {
		resp, b := post(t, ts, "/v1/cell",
			`{"seed":3,"scale":32,"nets":["AlexNet"],"cell":"`+cell+`"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cell %q = %d: %s", cell, resp.StatusCode, b)
		}
		var cr CellResponse
		if err := json.Unmarshal(b, &cr); err != nil {
			t.Fatalf("bad response JSON: %v", err)
		}
		bench := experiments.NewQuickBench(3, 32)
		bench.Nets = []string{"AlexNet"}
		want, err := bench.RunCellChecked(cell, experiments.RunOptions{})
		if err != nil {
			t.Fatalf("local run of %q: %v", cell, err)
		}
		if !bytes.Equal(cr.Payload, want) {
			t.Errorf("cell %q payload differs from local run:\nremote %s\nlocal  %s", cell, cr.Payload, want)
		}
		if cr.Fingerprint != bench.CellSpec(cell).Fingerprint() {
			t.Errorf("cell %q fingerprint %q does not match the local spec", cell, cr.Fingerprint)
		}
		if want := experiments.CellPayloadDigest(cr.Fingerprint, cr.Payload); cr.PayloadSHA256 != want {
			t.Errorf("cell %q payload_sha256 %q does not verify (want %q)", cell, cr.PayloadSHA256, want)
		}
		if rs, err := experiments.DecodeCellPayload(cr.Payload); err != nil || len(rs) == 0 {
			t.Errorf("cell %q payload undecodable: %v", cell, err)
		}
	}
}

func TestCellEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for name, body := range map[string]string{
		"unknown-cell": `{"cell":"figure99"}`,
		"missing-cell": `{"seed":1}`,
		"unknown-net":  `{"cell":"table4","nets":["NoSuchNet"]}`,
		"bad-scale":    `{"cell":"table4","scale":-4}`,
	} {
		resp, b := post(t, ts, "/v1/cell", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, b)
		}
	}
}

// TestCellEndpointCachesByFingerprint: with a cell cache configured, the
// second identical request is served from disk, byte-identical, flagged
// cached.
func TestCellEndpointCachesByFingerprint(t *testing.T) {
	var cache *cellcache.Cache
	_, ts := newTestServer(t, func(c *Config) {
		var err error
		cache, err = cellcache.Open(filepath.Join(t.TempDir(), "cells"), c.Registry)
		if err != nil {
			t.Fatal(err)
		}
		c.CellCache = cache
	})
	body := `{"seed":5,"scale":32,"nets":["AlexNet"],"cell":"figure1"}`
	var responses [2]CellResponse
	for i := range responses {
		resp, b := post(t, ts, "/v1/cell", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, resp.StatusCode, b)
		}
		if err := json.Unmarshal(b, &responses[i]); err != nil {
			t.Fatal(err)
		}
	}
	if responses[0].Cached {
		t.Error("first request claims a cache hit")
	}
	if !responses[1].Cached {
		t.Error("second identical request did not hit the cell cache")
	}
	if !bytes.Equal(responses[0].Payload, responses[1].Payload) {
		t.Error("cached payload differs from computed payload")
	}
	if n, err := cache.Len(); err != nil || n != 1 {
		t.Errorf("cache holds %d entries (err %v), want 1", n, err)
	}
}

// TestCellEndpointPanicCarriesReplaySeed pins the wire contract behind
// remote failure replay (and the fleet's satellite regression): an
// injected panic answers 500 with a cell_error whose seed is exactly the
// seed a local AllChecked run would derive for that cell — so the remote
// failure reproduces locally from the response alone.
func TestCellEndpointPanicCarriesReplaySeed(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		spec, err := faultinject.ParseSpec("seed=7,panic=1")
		if err != nil {
			t.Fatal(err)
		}
		c.Fault = faultinject.New(spec)
	})
	resp, b := post(t, ts, "/v1/cell", `{"seed":9,"scale":32,"nets":["AlexNet"],"cell":"figure12"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d (%s), want 500", resp.StatusCode, b)
	}
	var aerr struct {
		Msg       string          `json:"error"`
		CellError json.RawMessage `json:"cell_error"`
	}
	if err := json.Unmarshal(b, &aerr); err != nil {
		t.Fatal(err)
	}
	if aerr.CellError == nil {
		t.Fatalf("no cell_error in failure body: %s", b)
	}
	var ce struct {
		Key      string `json:"key"`
		Seed     int64  `json:"seed"`
		Panicked bool   `json:"panicked"`
	}
	if err := json.Unmarshal(aerr.CellError, &ce); err != nil {
		t.Fatal(err)
	}
	if !ce.Panicked {
		t.Error("cell_error not classified as a panic")
	}
	if ce.Key != "figure12" {
		t.Errorf("cell_error key %q, want figure12", ce.Key)
	}
	if want := workload.DeriveSeed(9, "job", "figure12"); ce.Seed != want {
		t.Errorf("replay seed %d, want the AllChecked derivation %d", ce.Seed, want)
	}
}
